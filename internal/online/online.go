// Package online builds an arrival-driven co-scheduling server on top
// of the batch machinery: jobs arrive over (simulated) time at a
// power-capped APU node, and the server repeatedly plans and executes
// co-schedules for whatever is queued.
//
// This is the "take effect online" operating mode the paper motivates
// in section III: the scheduler itself is cheap enough (< 0.1% of
// makespan) to re-run at every scheduling epoch. The server uses an
// epoch model — while one planned batch executes, newly arrived jobs
// queue; when the batch drains, the queue is re-planned — which is how
// non-preemptive accelerator queues behave in practice.
package online

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"corun/internal/apu"
	"corun/internal/core"
	"corun/internal/kernelsim"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/policy"
	"corun/internal/profile"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// Policy names the per-epoch scheduling policy. It is a canonical name
// from the internal/policy registry — the single source of truth for
// which policies exist — so every registered planner (hcs+, hcs,
// optimal, anneal, genetic, ...) can serve epochs, while the Random
// and Default names keep the paper's dispatcher-driven baseline
// semantics (section VI-A) rather than their planned registry forms.
type Policy string

// The paper's serving policies. Any other registered policy name is
// equally valid; these constants exist for the common cases and
// backwards compatibility.
const (
	// PolicyHCSPlus plans each epoch with HCS plus refinement.
	PolicyHCSPlus Policy = "hcs+"
	// PolicyHCS plans with plain HCS.
	PolicyHCS Policy = "hcs"
	// PolicyRandom dispatches each epoch with the Random baseline.
	PolicyRandom Policy = "random"
	// PolicyDefault dispatches each epoch with the Default baseline.
	PolicyDefault Policy = "default"
)

// String implements fmt.Stringer.
func (p Policy) String() string { return string(p) }

// Canonical resolves the policy through the registry to its canonical
// name (aliases and case differences collapse). Unknown names are an
// error listing every registered policy.
func (p Policy) Canonical() (Policy, error) {
	name, err := policy.Canonical(string(p))
	if err != nil {
		return "", err
	}
	return Policy(name), nil
}

// Valid reports whether p names a registered policy. Callers accepting
// policy values from the outside (flags, HTTP requests) should check
// this rather than letting an unknown value surface as a mid-epoch
// scheduling error.
func (p Policy) Valid() error {
	_, err := p.Canonical()
	return err
}

// Policies returns every registered policy by canonical name, sorted.
func Policies() []Policy {
	names := policy.Names()
	out := make([]Policy, len(names))
	for i, n := range names {
		out[i] = Policy(n)
	}
	return out
}

// ParsePolicy resolves a policy name through the registry (canonical
// names and aliases, case-insensitive) to its canonical Policy value.
// Unknown names are an error listing every registered policy, never a
// silent default — API layers turn this into a 400.
func ParsePolicy(s string) (Policy, error) {
	return Policy(s).Canonical()
}

// Arrival is one job arriving at the server.
type Arrival struct {
	At    units.Seconds
	Prog  *kernelsim.Program
	Scale float64
	Label string
}

// EpochStats describes one completed scheduling epoch to a Hook.
type EpochStats struct {
	// Index counts epochs from 0.
	Index int
	// Clock is the server time at which the epoch started.
	Clock units.Seconds
	// Jobs is the epoch's batch size.
	Jobs int
	// Makespan is the epoch's simulated duration.
	Makespan units.Seconds
	// EnergyJ is the epoch's energy.
	EnergyJ float64
}

// Options configures the server.
type Options struct {
	Cfg  *apu.Config
	Mem  *memsys.Model
	Char *model.Characterization
	Cap  units.Watts
	// Domains are optional RAPL-style per-plane caps (PP0 = CPU cores,
	// PP1 = iGPU, Package tightens Cap) enforced during planning and
	// execution alongside Cap.
	Domains apu.DomainCaps

	Policy Policy
	// Seed drives the Random policy and refinement sampling.
	Seed int64

	// Planned, if set, observes each epoch's plan after scheduling but
	// before execution. plan is nil for the dispatcher-driven baselines
	// (Random/Default); predicted is the model's makespan estimate for
	// the planned schedule (0 without a plan). A daemon uses this to
	// expose in-flight state (job status, predicted finish) while the
	// epoch executes.
	Planned func(plan *core.Schedule, predicted units.Seconds)

	// Hook, if set, observes each completed epoch. Returning an error
	// aborts serving — together with ServeContext this is the
	// injectable step hook that lets a caller pace epochs in real or
	// accelerated time instead of running the stream to completion as
	// fast as possible.
	Hook func(EpochStats) error
}

// Validate checks the options themselves (not an arrival stream):
// machine and memory models must be present, the policy must be a
// defined one, model-based policies need a characterization, and the
// cap must be non-negative.
func (o Options) Validate() error {
	if o.Cfg == nil || o.Mem == nil {
		return fmt.Errorf("online: nil machine or memory model")
	}
	pol, err := o.Policy.Canonical()
	if err != nil {
		return err
	}
	if o.Cap < 0 {
		return fmt.Errorf("online: negative power cap %v", o.Cap)
	}
	if err := o.Cfg.CheckCaps(o.Cap, o.Domains); err != nil {
		return err
	}
	// Every policy except the dispatcher-driven Random baseline plans
	// over the predictive model and therefore needs the offline
	// characterization.
	if pol != PolicyRandom && o.Char == nil {
		return fmt.Errorf("online: model-based policies need a characterization")
	}
	return nil
}

// JobOutcome records one served job.
type JobOutcome struct {
	Label string
	// Arrived, Started, Finished are absolute server times; Started is
	// the epoch start (jobs wait for the running epoch to drain).
	Arrived  units.Seconds
	Started  units.Seconds
	Finished units.Seconds
}

// Response is the job's total time in the system.
func (j JobOutcome) Response() units.Seconds { return j.Finished - j.Arrived }

// Result summarizes a served arrival stream.
type Result struct {
	Outcomes []JobOutcome
	// Done is the time the last job finished.
	Done units.Seconds
	// Epochs is how many scheduling rounds ran.
	Epochs int
	// MeanResponse and MaxResponse summarize job latencies.
	MeanResponse units.Seconds
	MaxResponse  units.Seconds
	// EnergyJ is total energy across epochs.
	EnergyJ float64
}

// Serve runs the arrival stream to completion. It is ServeContext
// with a background context — no cancellation path.
func Serve(opts Options, arrivals []Arrival) (*Result, error) {
	return ServeContext(context.Background(), opts, arrivals)
}

// ServeContext runs the arrival stream to completion or until ctx is
// cancelled. Cancellation is checked between epochs: the in-flight
// epoch always completes (the simulated machine is non-preemptive),
// then serving stops with ctx.Err(). This is the cancellation path a
// draining daemon uses.
func ServeContext(ctx context.Context, opts Options, arrivals []Arrival) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(arrivals) == 0 {
		return &Result{}, nil
	}
	for i, a := range arrivals {
		if a.Prog == nil {
			return nil, fmt.Errorf("online: arrival %d has no program", i)
		}
		if a.Scale <= 0 {
			return nil, fmt.Errorf("online: arrival %d has scale %v", i, a.Scale)
		}
	}
	sorted := append([]Arrival(nil), arrivals...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	res := &Result{}
	clock := units.Seconds(0)
	next := 0
	rng := rand.New(rand.NewSource(opts.Seed))

	for next < len(sorted) || clock < res.Done {
		if next >= len(sorted) {
			break
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// Wait for work.
		if sorted[next].At > clock {
			clock = sorted[next].At
		}
		// Take everything that has arrived by now.
		var epoch []Arrival
		for next < len(sorted) && sorted[next].At <= clock {
			epoch = append(epoch, sorted[next])
			next++
		}
		batch := make([]*workload.Instance, len(epoch))
		for i, a := range epoch {
			batch[i] = &workload.Instance{ID: i, Prog: a.Prog, Scale: a.Scale, Label: a.Label}
		}

		ep, err := PlanEpoch(opts, batch, rng.Int63())
		if err != nil {
			return nil, err
		}
		simRes := ep.Result
		res.Epochs++
		res.EnergyJ += simRes.EnergyJ
		for _, c := range simRes.Completions {
			// Map the completion back to its arrival.
			a := epoch[c.Inst.ID]
			res.Outcomes = append(res.Outcomes, JobOutcome{
				Label:    a.Label,
				Arrived:  a.At,
				Started:  clock,
				Finished: clock + c.End,
			})
		}
		if opts.Hook != nil {
			stats := EpochStats{
				Index:    res.Epochs - 1,
				Clock:    clock,
				Jobs:     len(batch),
				Makespan: simRes.Makespan,
				EnergyJ:  simRes.EnergyJ,
			}
			if err := opts.Hook(stats); err != nil {
				return res, err
			}
		}
		clock += simRes.Makespan
		if clock > res.Done {
			res.Done = clock
		}
	}

	sum, max := 0.0, units.Seconds(0)
	for _, o := range res.Outcomes {
		r := o.Response()
		sum += float64(r)
		if r > max {
			max = r
		}
	}
	if len(res.Outcomes) > 0 {
		res.MeanResponse = units.Seconds(sum / float64(len(res.Outcomes)))
	}
	res.MaxResponse = max
	return res, nil
}

// Epoch is the outcome of one scheduling round: the plan (nil for the
// dispatcher-driven baselines), the model's predicted makespan for
// that plan (0 without one), and the ground-truth simulation result.
type Epoch struct {
	Plan      *core.Schedule
	Predicted units.Seconds
	Result    *sim.Result
}

// PlanEpoch schedules and executes one queued batch under the options'
// policy. Instance IDs in the batch must equal their indices. This is
// the building block a long-running daemon drives directly: it owns
// the queue and the clock, and calls PlanEpoch once per round.
//
// The Random and Default names run the paper's dispatcher-driven
// baselines; every other name resolves through the policy registry,
// plans a schedule over the (memoized) predictive model, and executes
// that plan.
func PlanEpoch(opts Options, batch []*workload.Instance, seed int64) (*Epoch, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	pol, err := opts.Policy.Canonical()
	if err != nil {
		return nil, err
	}
	execOpts := core.ExecOptions{Cfg: opts.Cfg, Mem: opts.Mem, Cap: opts.Cap, Domains: opts.Domains}
	switch pol {
	case PolicyRandom:
		if opts.Planned != nil {
			opts.Planned(nil, 0)
		}
		res, err := core.ExecuteRandom(execOpts, batch, seed, sim.GPUBiased)
		if err != nil {
			return nil, err
		}
		return &Epoch{Result: res}, nil
	case PolicyDefault:
		pred, err := epochOracle(opts, batch)
		if err != nil {
			return nil, err
		}
		if opts.Planned != nil {
			opts.Planned(nil, 0)
		}
		res, err := core.ExecuteDefault(execOpts, batch, pred, sim.GPUBiased)
		if err != nil {
			return nil, err
		}
		return &Epoch{Result: res}, nil
	default:
		pred, err := epochOracle(opts, batch)
		if err != nil {
			return nil, err
		}
		cx, err := core.NewContext(pred, opts.Cfg, opts.Cap)
		if err != nil {
			return nil, err
		}
		cx.Domains = opts.Domains // before the first query: the memos assume fixed caps
		plan, err := policy.Plan(string(pol), cx, policy.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		predicted, err := cx.PredictedMakespan(plan)
		if err != nil {
			return nil, err
		}
		if opts.Planned != nil {
			opts.Planned(plan.Clone(), predicted)
		}
		res, err := cx.Execute(plan, batch, execOpts)
		if err != nil {
			return nil, err
		}
		return &Epoch{Plan: plan, Predicted: predicted, Result: res}, nil
	}
}

// epochOracle assembles the epoch's predictive oracle: profile the
// batch, bind the profiles to the characterization, and wrap the
// result in the memoizing cache so repeated interpolation queries
// within the planning pass are answered once.
func epochOracle(opts Options, batch []*workload.Instance) (core.Oracle, error) {
	prof, err := profile.Collect(opts.Cfg, opts.Mem, batch)
	if err != nil {
		return nil, err
	}
	pred, err := model.NewPredictor(opts.Char, prof)
	if err != nil {
		return nil, err
	}
	return model.NewCachedPredictor(pred, opts.Cfg)
}

// GenerateArrivals produces a seeded arrival stream: n jobs drawn
// uniformly from the benchmark set with exponential-ish inter-arrival
// gaps of the given mean (seconds) and input scales in [0.8, 1.3].
func GenerateArrivals(n int, meanGap float64, seed int64) ([]Arrival, error) {
	if n <= 0 {
		return nil, fmt.Errorf("online: need at least one arrival")
	}
	if meanGap < 0 {
		return nil, fmt.Errorf("online: negative mean gap")
	}
	rng := rand.New(rand.NewSource(seed))
	names := workload.Names()
	out := make([]Arrival, n)
	t := 0.0
	for i := range out {
		name := names[rng.Intn(len(names))]
		prog, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = Arrival{
			At:    units.Seconds(t),
			Prog:  prog,
			Scale: 0.8 + 0.5*rng.Float64(),
			Label: fmt.Sprintf("%s@%d", name, i),
		}
		t += rng.ExpFloat64() * meanGap
	}
	return out, nil
}
