// Package trace records time series produced by the simulator — most
// importantly the 1 Hz package-power samples the paper plots in
// Figure 9 — and renders them as CSV for external tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"corun/internal/units"
)

// Sample is one timestamped observation.
type Sample struct {
	Time  units.Seconds
	Value float64
}

// Series is an append-only time series with a name and a unit label.
type Series struct {
	Name string
	Unit string

	samples []Sample
}

// NewSeries creates an empty series.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Add appends a sample. Samples must be added in non-decreasing time
// order; Add returns an error otherwise so simulator bugs surface
// early.
func (s *Series) Add(t units.Seconds, v float64) error {
	if n := len(s.samples); n > 0 && t < s.samples[n-1].Time {
		return fmt.Errorf("trace: %s: sample at %v precedes last sample at %v",
			s.Name, t, s.samples[n-1].Time)
	}
	s.samples = append(s.samples, Sample{Time: t, Value: v})
	return nil
}

// MustAdd is Add for callers that guarantee ordering; it panics on
// out-of-order samples.
func (s *Series) MustAdd(t units.Seconds, v float64) {
	if err := s.Add(t, v); err != nil {
		panic(err)
	}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// At returns the i-th sample.
func (s *Series) At(i int) Sample { return s.samples[i] }

// Samples returns a copy of all samples.
func (s *Series) Samples() []Sample {
	return append([]Sample(nil), s.samples...)
}

// Max returns the largest sample value, or 0 for an empty series.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, sm := range s.samples {
		if sm.Value > max {
			max = sm.Value
		}
	}
	if math.IsInf(max, -1) {
		return 0
	}
	return max
}

// Mean returns the arithmetic mean of the sample values, or 0 for an
// empty series.
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, sm := range s.samples {
		sum += sm.Value
	}
	return sum / float64(len(s.samples))
}

// CountAbove returns how many samples exceed the threshold and the
// largest excess observed.
func (s *Series) CountAbove(threshold float64) (n int, maxExcess float64) {
	for _, sm := range s.samples {
		if sm.Value > threshold {
			n++
			if ex := sm.Value - threshold; ex > maxExcess {
				maxExcess = ex
			}
		}
	}
	return n, maxExcess
}

// MarshalJSON renders the series with its samples, so experiment
// results embedding traces serialize cleanly.
func (s *Series) MarshalJSON() ([]byte, error) {
	type sample struct {
		T float64 `json:"t"`
		V float64 `json:"v"`
	}
	out := struct {
		Name    string   `json:"name"`
		Unit    string   `json:"unit"`
		Samples []sample `json:"samples"`
	}{Name: s.Name, Unit: s.Unit}
	for _, sm := range s.samples {
		out.Samples = append(out.Samples, sample{T: float64(sm.Time), V: sm.Value})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a series written by MarshalJSON.
func (s *Series) UnmarshalJSON(data []byte) error {
	var in struct {
		Name    string `json:"name"`
		Unit    string `json:"unit"`
		Samples []struct {
			T float64 `json:"t"`
			V float64 `json:"v"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	s.Name, s.Unit, s.samples = in.Name, in.Unit, nil
	for _, sm := range in.Samples {
		if err := s.Add(units.Seconds(sm.T), sm.V); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders several series as one JSON document of the form
// {"series": [...]}, each element in the MarshalJSON encoding. This is
// the payload a daemon serves from its trace endpoint.
func WriteJSON(w io.Writer, series ...*Series) error {
	out := struct {
		Series []*Series `json:"series"`
	}{Series: series}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteCSV renders the series as a two-column CSV with a header.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_s,%s_%s\n", s.Name, s.Unit); err != nil {
		return err
	}
	for _, sm := range s.samples {
		if _, err := fmt.Fprintf(w, "%.3f,%.4f\n", float64(sm.Time), sm.Value); err != nil {
			return err
		}
	}
	return nil
}

// WriteMultiCSV renders several series sharing a time base as one CSV.
// The series need not have identical timestamps; rows are the union of
// all timestamps and missing values are left empty.
func WriteMultiCSV(w io.Writer, series ...*Series) error {
	if _, err := fmt.Fprint(w, "time_s"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, ",%s_%s", s.Name, s.Unit); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	idx := make([]int, len(series))
	for {
		// Find the smallest pending timestamp.
		t := math.Inf(1)
		for i, s := range series {
			if idx[i] < s.Len() && float64(s.At(idx[i]).Time) < t {
				t = float64(s.At(idx[i]).Time)
			}
		}
		if math.IsInf(t, 1) {
			return nil
		}
		if _, err := fmt.Fprintf(w, "%.3f", t); err != nil {
			return err
		}
		for i, s := range series {
			if idx[i] < s.Len() && float64(s.At(idx[i]).Time) == t {
				if _, err := fmt.Fprintf(w, ",%.4f", s.At(idx[i]).Value); err != nil {
					return err
				}
				idx[i]++
			} else if _, err := fmt.Fprint(w, ","); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
}
