package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"corun/internal/units"
)

func TestSeriesAddAndAccess(t *testing.T) {
	s := NewSeries("power", "w")
	for i := 0; i < 5; i++ {
		if err := s.Add(units.Seconds(i), float64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if got := s.At(2); got.Time != 2 || got.Value != 12 {
		t.Errorf("At(2) = %+v", got)
	}
}

func TestSeriesRejectsOutOfOrder(t *testing.T) {
	s := NewSeries("x", "u")
	if err := s.Add(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(4, 1); err == nil {
		t.Error("out-of-order sample accepted")
	}
	// Equal timestamps are allowed (two events in the same instant).
	if err := s.Add(5, 2); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
}

func TestMustAddPanics(t *testing.T) {
	s := NewSeries("x", "u")
	s.MustAdd(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("MustAdd on out-of-order sample did not panic")
		}
	}()
	s.MustAdd(1, 1)
}

func TestMaxMeanEmpty(t *testing.T) {
	s := NewSeries("x", "u")
	if s.Max() != 0 || s.Mean() != 0 {
		t.Error("empty series statistics should be zero")
	}
}

func TestMaxMean(t *testing.T) {
	s := NewSeries("x", "u")
	for _, v := range []float64{3, 9, 6} {
		s.MustAdd(units.Seconds(s.Len()), v)
	}
	if s.Max() != 9 {
		t.Errorf("Max = %v, want 9", s.Max())
	}
	if s.Mean() != 6 {
		t.Errorf("Mean = %v, want 6", s.Mean())
	}
}

func TestCountAbove(t *testing.T) {
	s := NewSeries("p", "w")
	for i, v := range []float64{14, 15.5, 16.2, 14.9, 17.0} {
		s.MustAdd(units.Seconds(i), v)
	}
	n, maxEx := s.CountAbove(15)
	if n != 3 {
		t.Errorf("CountAbove(15) n = %d, want 3", n)
	}
	if maxEx != 2 {
		t.Errorf("max excess = %v, want 2", maxEx)
	}
}

func TestSamplesCopy(t *testing.T) {
	s := NewSeries("x", "u")
	s.MustAdd(0, 1)
	got := s.Samples()
	got[0].Value = 99
	if s.At(0).Value == 99 {
		t.Error("Samples() exposes internal storage")
	}
}

func TestWriteCSV(t *testing.T) {
	s := NewSeries("power", "w")
	s.MustAdd(0, 14.5)
	s.MustAdd(1, 15.25)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time_s,power_w\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "1.000,15.2500") {
		t.Errorf("missing row: %q", out)
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := NewSeries("power", "w")
	s.MustAdd(0, 14.5)
	s.MustAdd(1.5, 15.25)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Series
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "power" || back.Unit != "w" || back.Len() != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.At(1).Time != 1.5 || back.At(1).Value != 15.25 {
		t.Errorf("sample mangled: %+v", back.At(1))
	}
	// Out-of-order samples in the payload are rejected.
	bad := []byte(`{"name":"x","unit":"u","samples":[{"t":5,"v":1},{"t":1,"v":2}]}`)
	if err := json.Unmarshal(bad, &back); err == nil {
		t.Error("out-of-order payload accepted")
	}
}

func TestWriteMultiCSV(t *testing.T) {
	a := NewSeries("a", "w")
	b := NewSeries("b", "w")
	a.MustAdd(0, 1)
	a.MustAdd(1, 2)
	b.MustAdd(1, 10)
	b.MustAdd(2, 20)
	var sb strings.Builder
	if err := WriteMultiCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4: %q", len(lines), sb.String())
	}
	if lines[0] != "time_s,a_w,b_w" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.000,1.0000,") || !strings.HasSuffix(lines[1], ",") {
		t.Errorf("row with missing b value malformed: %q", lines[1])
	}
	if lines[2] != "1.000,2.0000,10.0000" {
		t.Errorf("shared-timestamp row = %q", lines[2])
	}
}

func TestWriteJSON(t *testing.T) {
	a := NewSeries("makespan", "s")
	a.MustAdd(1, 10)
	a.MustAdd(2, 20)
	b := NewSeries("power", "W")
	b.MustAdd(1, 14.5)
	var buf strings.Builder
	if err := WriteJSON(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Series []*Series `json:"series"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 2 || out.Series[0].Name != "makespan" || out.Series[1].Len() != 1 {
		t.Fatalf("round trip: %+v", out.Series)
	}
	if out.Series[0].At(1).Value != 20 {
		t.Errorf("sample lost: %+v", out.Series[0].Samples())
	}
}
