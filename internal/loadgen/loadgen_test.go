package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubCorund is a minimal fake of the daemon's API surface: enough for
// the harness to run a full measurement window without a scheduler.
func stubCorund(t *testing.T) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var submits atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n := submits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id": "job-%06d"}`, n)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"id": %q, "state": "done"}`, r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error": "no epoch planned yet"}`, http.StatusNotFound)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# TYPE corund_jobs_submitted_total counter\n")
		fmt.Fprintf(w, "corund_jobs_submitted_total %d\n", submits.Load())
		fmt.Fprintf(w, "corund_epochs_total 7\n")
		fmt.Fprintf(w, "corund_queue_depth 3\n")
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &submits
}

// TestRunClosedLoopSmoke drives the harness against the stub and pins
// the report schema: populated endpoint sections, monotone quantiles,
// and server-side counter deltas that match the stub's accounting.
func TestRunClosedLoopSmoke(t *testing.T) {
	srv, submits := stubCorund(t)
	tenants, err := ParseTenants("team-a=3:high,team-b=1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:      srv.URL,
		Mode:         ModeClosed,
		Concurrency:  4,
		Warmup:       50 * time.Millisecond,
		Duration:     300 * time.Millisecond,
		Tenants:      tenants,
		ReadFraction: 0.5,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Bench != 10 || rep.GeneratedBy != "corunbench" {
		t.Errorf("report identity: bench=%d generated_by=%q", rep.Bench, rep.GeneratedBy)
	}
	if rep.Accepted == 0 {
		t.Fatal("no accepted submissions in the measurement window")
	}
	if rep.ThroughputRPS <= 0 || rep.SubmitThroughputRPS <= 0 {
		t.Errorf("throughput not positive: %v / %v", rep.ThroughputRPS, rep.SubmitThroughputRPS)
	}
	if rep.Errors != 0 {
		t.Errorf("unexpected errors against the stub: %d", rep.Errors)
	}
	// The stub counted every submission ever made (warmup included);
	// the report's accepted count covers only the measurement window.
	if rep.Accepted > submits.Load() {
		t.Errorf("accepted %d > total submits %d", rep.Accepted, submits.Load())
	}

	for _, name := range []string{EndpointSubmit, EndpointJob, EndpointPlan} {
		ep, ok := rep.Endpoints[name]
		if !ok {
			t.Fatalf("endpoint %q missing from report", name)
		}
		if ep.Count == 0 {
			t.Errorf("endpoint %q recorded no requests", name)
			continue
		}
		// The headline guarantee: quantiles monotone and positive.
		if !(ep.P50Ms > 0 && ep.P50Ms <= ep.P90Ms && ep.P90Ms <= ep.P99Ms && ep.P99Ms <= ep.P999Ms) {
			t.Errorf("endpoint %q quantiles not monotone: p50=%v p90=%v p99=%v p999=%v",
				name, ep.P50Ms, ep.P90Ms, ep.P99Ms, ep.P999Ms)
		}
		if ep.MaxMs < ep.P50Ms {
			t.Errorf("endpoint %q max %v below p50 %v", name, ep.MaxMs, ep.P50Ms)
		}
	}

	// Per-tenant sections: both tenants submitted, the 3:1 offered mix
	// shows up directionally, and quantiles are monotone where present.
	if rep.Config.Tenants != "team-a=3:high,team-b=1" {
		t.Errorf("tenant mix echo %q", rep.Config.Tenants)
	}
	for _, name := range []string{"team-a", "team-b"} {
		tr, ok := rep.Tenants[name]
		if !ok {
			t.Fatalf("tenant %q missing from report", name)
		}
		if tr.Accepted == 0 {
			t.Errorf("tenant %q recorded no accepted submissions", name)
			continue
		}
		if !(tr.P50Ms > 0 && tr.P50Ms <= tr.P90Ms && tr.P90Ms <= tr.P99Ms && tr.P99Ms <= tr.P999Ms) {
			t.Errorf("tenant %q quantiles not monotone: p50=%v p90=%v p99=%v p999=%v",
				name, tr.P50Ms, tr.P90Ms, tr.P99Ms, tr.P999Ms)
		}
	}
	if a, b := rep.Tenants["team-a"], rep.Tenants["team-b"]; a.Accepted <= b.Accepted {
		t.Errorf("3:1 offered mix inverted: team-a %d <= team-b %d", a.Accepted, b.Accepted)
	}
	if p := rep.Tenants["team-a"].Priority; p != "high" {
		t.Errorf("team-a priority %q, want high", p)
	}
	if got := rep.Tenants["team-a"].Accepted + rep.Tenants["team-b"].Accepted; got != rep.Accepted {
		t.Errorf("tenant accepted sum %d != total %d", got, rep.Accepted)
	}

	if rep.Server == nil {
		t.Fatal("server stats missing")
	}
	if rep.Server.Epochs != 0 { // stub reports a constant, delta must be 0
		t.Errorf("epoch delta %v, want 0", rep.Server.Epochs)
	}
	if rep.Server.QueueDepth != 3 {
		t.Errorf("queue depth %v, want 3", rep.Server.QueueDepth)
	}
	// The warmup boundary is not a barrier: a submit in flight when the
	// counters reset can be client-counted inside the window while its
	// server-side increment landed before the pre-scrape, so the delta
	// may trail the accepted count by up to the worker count.
	if uint64(rep.Server.JobsSubmitted)+4 < rep.Accepted {
		t.Errorf("server submit delta %v < accepted %d - concurrency", rep.Server.JobsSubmitted, rep.Accepted)
	}

	// The report must round-trip as the documented JSON schema.
	var buf strings.Builder
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"bench", "config", "throughput_rps", "endpoints", "server"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
}

// TestRunOpenLoopSmoke exercises the fixed-rate arrival path.
func TestRunOpenLoopSmoke(t *testing.T) {
	srv, _ := stubCorund(t)
	rep, err := Run(context.Background(), Config{
		BaseURL:      srv.URL,
		Mode:         ModeOpen,
		Rate:         200,
		Warmup:       50 * time.Millisecond,
		Duration:     300 * time.Millisecond,
		ReadFraction: 0.25,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted == 0 {
		t.Fatal("open loop made no accepted submissions")
	}
	if rep.Config.Mode != "open" || rep.Config.RateRPS != 200 {
		t.Errorf("config echo wrong: %+v", rep.Config)
	}
}

func TestParseMix(t *testing.T) {
	all, err := ParseMix("all")
	if err != nil || len(all) == 0 {
		t.Fatalf("ParseMix(all) = %v, %v", all, err)
	}
	got, err := ParseMix("cfd=3, lud")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (MixEntry{"cfd", 3}) || got[1] != (MixEntry{"lud", 1}) {
		t.Errorf("mix = %+v", got)
	}
	for _, bad := range []string{"nosuchprog", "cfd=0", "cfd=-1", "cfd=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestParseTenants(t *testing.T) {
	if got, err := ParseTenants(""); err != nil || got != nil {
		t.Fatalf("ParseTenants(\"\") = %v, %v", got, err)
	}
	got, err := ParseTenants("team-a=3:high, team-b, batch=1:low")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantEntry{
		{Name: "team-a", Weight: 3, Priority: "high"},
		{Name: "team-b", Weight: 1},
		{Name: "batch", Weight: 1, Priority: "low"},
	}
	if len(got) != len(want) {
		t.Fatalf("tenants = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tenants[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{
		"=3",                    // empty name
		"a b",                   // invalid tenant name
		"a=0",                   // zero share
		"a=-1",                  // negative share
		"a=x",                   // unparsable share
		"a:urgent",              // unknown priority
		"a=1,a=2",               // duplicate tenant
		strings.Repeat("x", 65), // name over the admission bound
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{BaseURL: "http://x", Mode: ModeClosed, Concurrency: 1, Duration: time.Second}
	if err := base.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mut := range map[string]func(*Config){
		"no url":        func(c *Config) { c.BaseURL = "" },
		"bad mode":      func(c *Config) { c.Mode = "burst" },
		"open no rate":  func(c *Config) { c.Mode = ModeOpen; c.Rate = 0 },
		"closed no n":   func(c *Config) { c.Concurrency = 0 },
		"no duration":   func(c *Config) { c.Duration = 0 },
		"neg warmup":    func(c *Config) { c.Warmup = -time.Second },
		"read frac > 1": func(c *Config) { c.ReadFraction = 1.5 },
		"bad tenant":    func(c *Config) { c.Tenants = []TenantEntry{{Name: "a b", Weight: 1}} },
		"zero share":    func(c *Config) { c.Tenants = []TenantEntry{{Name: "a", Weight: 0}} },
		"bad priority":  func(c *Config) { c.Tenants = []TenantEntry{{Name: "a", Weight: 1, Priority: "urgent"}} },
	} {
		c := base
		mut(&c)
		if err := c.validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWaitReady(t *testing.T) {
	var probes atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		// Not ready for the first two probes — the recovering-daemon case.
		if probes.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	if err := WaitReady(context.Background(), nil, ts.URL, 5*time.Second); err != nil {
		t.Fatalf("WaitReady on a recovering server: %v", err)
	}
	if got := probes.Load(); got < 3 {
		t.Fatalf("ready after %d probes, want at least 3", got)
	}

	// A server that never comes up: the error names the last answer.
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer down.Close()
	err := WaitReady(context.Background(), nil, down.URL, 120*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("WaitReady against a down server: %v", err)
	}

	// Cancellation wins over the deadline.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := WaitReady(ctx, nil, down.URL, time.Minute); err == nil {
		t.Fatal("WaitReady ignored a cancelled context")
	}
}
