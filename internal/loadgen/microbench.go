package loadgen

import (
	"fmt"
	"os"
	"testing"

	"corun/internal/journal"
)

// Microbench runs the in-process micro-benchmarks that pair with a
// harness run: the journal append path (the daemon's ack-latency
// floor) in single-record and per-epoch batch shapes, and raw record
// framing. They use testing.Benchmark, so the ns/op and allocs/op
// match what `go test -bench` reports for the same code.
func Microbench() (map[string]MicroResult, error) {
	out := map[string]MicroResult{}
	run := func(name string, fn func(b *testing.B)) {
		out[name] = toMicro(testing.Benchmark(fn))
	}

	dir, err := os.MkdirTemp("", "corunbench-journal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	// FsyncNever so the benchmark measures the encode+write path, not
	// the disk; compaction off so it measures appends, not snapshots.
	jl, _, _, err := journal.Open(journal.Options{Dir: dir, Fsync: journal.FsyncNever, SnapshotBytes: -1})
	if err != nil {
		return nil, err
	}
	defer jl.Close()

	rec := benchRecord("job-000000")
	run("journal_append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := jl.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	batch := make([]journal.Record, 16)
	for i := range batch {
		batch[i] = benchRecord(fmt.Sprintf("job-%06d", i))
	}
	run("journal_append_batch16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := jl.Append(batch...); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("record_encode", func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = journal.AppendRecord(buf[:0], rec)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	return out, nil
}

func benchRecord(id string) journal.Record {
	return journal.Record{
		Type: journal.TypeJobState,
		Job: &journal.JobRecord{
			ID: id, Program: "cfd", Scale: 1.1, Label: "bench",
			State: "done", Epoch: 3,
			StartedSimS: 1, FinishedSimS: 2, ResponseS: 1.5, Device: "GPU",
		},
	}
}

func toMicro(r testing.BenchmarkResult) MicroResult {
	return MicroResult{
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
