// Package loadgen is the load-test harness behind cmd/corunbench: it
// drives a live corund instance end-to-end over HTTP — submissions,
// status reads, plan reads — in either an open loop (fixed arrival
// rate, the datacenter-facing question "does the daemon keep up with
// offered load") or a closed loop (fixed concurrency, the saturation
// question "how fast can N clients go"), with a warmup window that is
// discarded and a measurement window that is reported.
//
// Latencies are recorded per endpoint into log-bucketed histograms
// (promtext.LogHistogram), so one run resolves both sub-millisecond
// in-memory acks and multi-second fsync stalls at the same relative
// error, and the reported p50/p90/p99/p999 are monotone by
// construction. After the run the harness scrapes the daemon's own
// /metrics and reports the measurement-window deltas of the serving
// counters (epochs planned, journal appends/fsyncs/bytes), tying
// client-observed latency to server-side cost.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"corun/internal/admission"
	"corun/internal/promtext"
	"corun/internal/workload"
)

// Mode selects how load is offered.
type Mode string

// The load modes. Open offers arrivals at a fixed rate regardless of
// how fast the daemon answers (unanswered requests pile up, bounded by
// MaxInFlight); Closed keeps a fixed number of clients each issuing
// the next request as soon as the previous one returns.
const (
	ModeOpen   Mode = "open"
	ModeClosed Mode = "closed"
)

// The endpoints the harness exercises and reports on.
const (
	EndpointSubmit = "POST /v1/jobs"
	EndpointJob    = "GET /v1/jobs/{id}"
	EndpointPlan   = "GET /v1/plan"
)

// MixEntry weights one benchmark program in the submitted job mix.
type MixEntry struct {
	Program string
	Weight  float64
}

// ParseMix parses a job-mix spec: "all" (every calibrated benchmark,
// equally weighted) or a comma list of program[=weight] terms, e.g.
// "cfd=3,lud=1,hotspot". Programs must name calibrated benchmarks and
// weights must be positive.
func ParseMix(s string) ([]MixEntry, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		names := workload.Names()
		out := make([]MixEntry, len(names))
		for i, n := range names {
			out[i] = MixEntry{Program: n, Weight: 1}
		}
		return out, nil
	}
	var out []MixEntry
	for _, term := range strings.Split(s, ",") {
		name, wstr, hasW := strings.Cut(strings.TrimSpace(term), "=")
		name = strings.TrimSpace(name)
		if _, err := workload.ByName(name); err != nil {
			return nil, fmt.Errorf("loadgen: mix: %w (known: %s)", err, strings.Join(workload.Names(), ", "))
		}
		w := 1.0
		if hasW {
			var err error
			w, err = strconv.ParseFloat(strings.TrimSpace(wstr), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("loadgen: mix: bad weight %q for %s", wstr, name)
			}
		}
		out = append(out, MixEntry{Program: name, Weight: w})
	}
	return out, nil
}

// TenantEntry weights one tenant in the submitted mix: the share of
// submissions issued under its name (the client-side offered mix, not
// the server-side WFQ weight) and the priority class those
// submissions carry.
type TenantEntry struct {
	Name     string
	Weight   float64
	Priority string // "" | low | normal | high
}

// ParseTenants parses a tenant-mix spec: a comma list of
// name[=share][:priority] terms, e.g. "team-a=3:high,team-b,batch=1:low".
// An empty spec means no tenant fields are sent at all (every job
// lands on the server's default tenant). Shares must be positive —
// this is the offered mix, so a zero share would just mean "absent" —
// and priorities must parse as admission classes.
func ParseTenants(s string) ([]TenantEntry, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []TenantEntry
	seen := map[string]bool{}
	for _, term := range strings.Split(s, ",") {
		rest, prio, hasPrio := strings.Cut(strings.TrimSpace(term), ":")
		name, wstr, hasW := strings.Cut(strings.TrimSpace(rest), "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("loadgen: tenants: empty name in %q", term)
		}
		if err := admission.ValidateTenant(name); err != nil {
			return nil, fmt.Errorf("loadgen: tenants: %w", err)
		}
		if seen[name] {
			return nil, fmt.Errorf("loadgen: tenants: duplicate tenant %q", name)
		}
		seen[name] = true
		e := TenantEntry{Name: name, Weight: 1}
		if hasW {
			w, err := strconv.ParseFloat(strings.TrimSpace(wstr), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("loadgen: tenants: bad share %q for %s", wstr, name)
			}
			e.Weight = w
		}
		if hasPrio {
			c, err := admission.ParseClass(prio)
			if err != nil {
				return nil, fmt.Errorf("loadgen: tenants: %w", err)
			}
			e.Priority = c.String()
		}
		out = append(out, e)
	}
	return out, nil
}

// Config configures one harness run.
type Config struct {
	// BaseURL is the corund instance under test, e.g. http://127.0.0.1:8080.
	BaseURL string

	// Mode is open (fixed arrival rate) or closed (fixed concurrency).
	Mode Mode

	// Rate is the open-loop arrival rate in requests/second.
	Rate float64

	// Concurrency is the closed-loop client count.
	Concurrency int

	// Warmup is discarded before the measurement window; Duration is
	// the measurement window itself.
	Warmup   time.Duration
	Duration time.Duration

	// Mix is the submitted job mix; empty means every benchmark,
	// equally weighted.
	Mix []MixEntry

	// Tenants is the submitted tenant mix: each submission carries one
	// entry's tenant name and priority, drawn by weight. Empty sends no
	// tenant fields (every job lands on the server's default tenant),
	// and the report omits its per-tenant section.
	Tenants []TenantEntry

	// ReadFraction of operations are reads (GET /v1/plan and
	// GET /v1/jobs/{id}, alternating) instead of submissions.
	ReadFraction float64

	// Seed drives program choice, scales, and read/write interleaving.
	Seed int64

	// MaxInFlight bounds open-loop outstanding requests; arrivals over
	// the bound are counted as dropped rather than queued without
	// limit. Defaults to 512.
	MaxInFlight int

	// ReadyTimeout, when positive, makes Run poll the target's /readyz
	// until it answers 200 (or the timeout passes) before offering any
	// load — replacing fixed start-up sleeps, which either waste time
	// or race a daemon still replaying its journal.
	ReadyTimeout time.Duration

	// Client overrides the HTTP client (default: 10s timeout).
	Client *http.Client
}

func (c *Config) validate() error {
	if c.BaseURL == "" {
		return fmt.Errorf("loadgen: no base URL")
	}
	switch c.Mode {
	case ModeOpen:
		if c.Rate <= 0 {
			return fmt.Errorf("loadgen: open loop needs a positive rate, got %v", c.Rate)
		}
	case ModeClosed:
		if c.Concurrency <= 0 {
			return fmt.Errorf("loadgen: closed loop needs positive concurrency, got %d", c.Concurrency)
		}
	default:
		return fmt.Errorf("loadgen: unknown mode %q (open | closed)", c.Mode)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: non-positive duration %v", c.Duration)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("loadgen: negative warmup %v", c.Warmup)
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("loadgen: read fraction %v outside [0,1]", c.ReadFraction)
	}
	for _, te := range c.Tenants {
		if err := admission.ValidateTenant(te.Name); err != nil {
			return fmt.Errorf("loadgen: tenants: %w", err)
		}
		if te.Weight <= 0 {
			return fmt.Errorf("loadgen: tenants: non-positive share %v for %s", te.Weight, te.Name)
		}
		if _, err := admission.ParseClass(te.Priority); err != nil {
			return fmt.Errorf("loadgen: tenants: %w", err)
		}
	}
	return nil
}

// endpointStats accumulates one endpoint's measurement window.
type endpointStats struct {
	hist   *promtext.LogHistogram
	count  atomic.Uint64 // 2xx responses with a recorded latency
	errors atomic.Uint64 // transport errors and unexpected statuses
}

func newEndpointStats() *endpointStats {
	// 10µs to 60s at ~10% relative error.
	return &endpointStats{hist: promtext.NewLogHistogram(10e-6, 60, 1.1)}
}

// tenantStats accumulates one tenant's submission outcomes and ack
// latencies over the measurement window, so the report can show each
// tenant's experienced quality of service (the WFQ question: did the
// low-weight tenant wait longer to get in?).
type tenantStats struct {
	hist     *promtext.LogHistogram
	accepted atomic.Uint64
	rejected atomic.Uint64
}

func newTenantStats() *tenantStats {
	return &tenantStats{hist: promtext.NewLogHistogram(10e-6, 60, 1.1)}
}

// runner is one harness run's shared state.
type runner struct {
	cfg       Config
	client    *http.Client
	measuring atomic.Bool
	eps       map[string]*endpointStats
	tstats    map[string]*tenantStats // keyed by tenant name; nil without Config.Tenants

	accepted atomic.Uint64 // 202 submissions in the window
	rejected atomic.Uint64 // 429/503 shed responses in the window
	dropped  atomic.Uint64 // open-loop arrivals over MaxInFlight

	idMu   sync.Mutex
	ids    []string // ring of recently acked job IDs for status reads
	idNext int      // ring write position once full
}

// Run drives one load test and returns its report. The context bounds
// the whole run; cancelling it ends the run early with whatever was
// measured.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 512
	}
	r := &runner{
		cfg:    cfg,
		client: cfg.Client,
		eps: map[string]*endpointStats{
			EndpointSubmit: newEndpointStats(),
			EndpointJob:    newEndpointStats(),
			EndpointPlan:   newEndpointStats(),
		},
	}
	if r.client == nil {
		// All load goes to one base URL; the stock transport keeps only
		// two idle connections per host, which churns TCP under any real
		// concurrency and charges the handshakes to the measured
		// latencies. Pool at least the worker count.
		r.client = &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	if len(cfg.Tenants) > 0 {
		r.tstats = make(map[string]*tenantStats, len(cfg.Tenants))
		for _, te := range cfg.Tenants {
			r.tstats[te.Name] = newTenantStats()
		}
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		var err error
		if mix, err = ParseMix("all"); err != nil {
			return nil, err
		}
	}
	if cfg.ReadyTimeout > 0 {
		if err := WaitReady(ctx, r.client, cfg.BaseURL, cfg.ReadyTimeout); err != nil {
			return nil, err
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Warmup+cfg.Duration)
	defer cancel()

	// The load runs in the background; this goroutine owns the warmup
	// boundary: discard everything recorded so far and snapshot the
	// server counters, so the report covers exactly the measurement
	// window.
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		switch cfg.Mode {
		case ModeClosed:
			r.runClosed(runCtx, mix)
		case ModeOpen:
			r.runOpen(runCtx, mix)
		}
	}()
	if cfg.Warmup > 0 {
		select {
		case <-time.After(cfg.Warmup):
		case <-runCtx.Done():
		}
	}
	for _, ep := range r.eps {
		ep.hist.Reset()
		ep.count.Store(0)
		ep.errors.Store(0)
	}
	for _, ts := range r.tstats {
		ts.hist.Reset()
		ts.accepted.Store(0)
		ts.rejected.Store(0)
	}
	r.accepted.Store(0)
	r.rejected.Store(0)
	r.dropped.Store(0)
	preScrape, _ := r.scrapeMetrics(ctx)
	r.measuring.Store(true)
	measureStart := time.Now()
	<-loadDone
	elapsed := time.Since(measureStart)
	if elapsed <= 0 {
		elapsed = time.Millisecond // cancelled before the window opened
	}

	postScrape, scrapeErr := r.scrapeMetrics(ctx)

	rep := &Report{
		Bench:       benchIndex,
		GeneratedBy: "corunbench",
		Config: RunConfig{
			BaseURL:      cfg.BaseURL,
			Mode:         string(cfg.Mode),
			RateRPS:      cfg.Rate,
			Concurrency:  cfg.Concurrency,
			WarmupS:      cfg.Warmup.Seconds(),
			DurationS:    cfg.Duration.Seconds(),
			MeasuredS:    elapsed.Seconds(),
			Mix:          formatMix(mix),
			Tenants:      formatTenants(cfg.Tenants),
			ReadFraction: cfg.ReadFraction,
			Seed:         cfg.Seed,
		},
		Accepted:  r.accepted.Load(),
		Rejected:  r.rejected.Load(),
		Dropped:   r.dropped.Load(),
		Endpoints: map[string]EndpointReport{},
	}
	var ops uint64
	for name, ep := range r.eps {
		er := endpointReport(ep)
		rep.Endpoints[name] = er
		ops += er.Count
		rep.Errors += er.Errors
	}
	rep.ThroughputRPS = round3(float64(ops) / elapsed.Seconds())
	rep.SubmitThroughputRPS = round3(float64(rep.Accepted) / elapsed.Seconds())
	if len(cfg.Tenants) > 0 {
		rep.Tenants = map[string]TenantReport{}
		for _, te := range cfg.Tenants {
			rep.Tenants[te.Name] = tenantReport(te, r.tstats[te.Name])
		}
	}
	if scrapeErr == nil {
		rep.Server = serverStats(preScrape, postScrape)
	}
	return rep, nil
}

// WaitReady polls baseURL's /readyz every 50ms until it answers 200,
// the timeout passes, or ctx is cancelled. The last not-ready answer
// (status code or transport error) is included in the timeout error,
// so "the daemon never came up" is diagnosable from the harness log.
func WaitReady(ctx context.Context, client *http.Client, baseURL string, timeout time.Duration) error {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	deadline := time.Now().Add(timeout)
	last := "no probe completed"
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("last answer %s", resp.Status)
		} else {
			last = fmt.Sprintf("last error: %v", err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s/readyz not ready within %v (%s)", baseURL, timeout, last)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// runClosed keeps cfg.Concurrency clients busy until ctx expires.
func (r *runner) runClosed(ctx context.Context, mix []MixEntry) {
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(w)*7919))
			for ctx.Err() == nil {
				r.oneOp(ctx, rng, mix)
			}
		}(w)
	}
	wg.Wait()
}

// runOpen fires arrivals on a fixed-rate clock; each arrival runs in
// its own goroutine so a slow response never delays the next arrival.
func (r *runner) runOpen(ctx context.Context, mix []MixEntry) {
	interval := time.Duration(float64(time.Second) / r.cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	sem := make(chan struct{}, r.cfg.MaxInFlight)
	var wg sync.WaitGroup
	rngMu := sync.Mutex{}
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
		}
		select {
		case sem <- struct{}{}:
		default:
			if r.measuring.Load() {
				r.dropped.Add(1)
			}
			continue
		}
		rngMu.Lock()
		seed := rng.Int63()
		rngMu.Unlock()
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			r.oneOp(ctx, rand.New(rand.NewSource(seed)), mix)
		}(seed)
	}
}

// oneOp issues one operation: a submission, or (with probability
// ReadFraction) a read alternating between the latest plan and a
// recently acked job's status.
func (r *runner) oneOp(ctx context.Context, rng *rand.Rand, mix []MixEntry) {
	if rng.Float64() < r.cfg.ReadFraction {
		if rng.Intn(2) == 0 {
			r.getPlan(ctx)
		} else if !r.getJob(ctx, rng) {
			r.getPlan(ctx) // no acked IDs yet
		}
		return
	}
	r.submit(ctx, rng, mix)
}

func (r *runner) submit(ctx context.Context, rng *rand.Rand, mix []MixEntry) {
	total := 0.0
	for _, m := range mix {
		total += m.Weight
	}
	pick := rng.Float64() * total
	prog := mix[len(mix)-1].Program
	for _, m := range mix {
		if pick < m.Weight {
			prog = m.Program
			break
		}
		pick -= m.Weight
	}
	spec := workload.JobSpec{Program: prog, Scale: 0.8 + 0.4*rng.Float64(), Label: "bench"}
	var ts *tenantStats
	if tenants := r.cfg.Tenants; len(tenants) > 0 {
		te := pickTenant(rng, tenants)
		spec.Tenant = te.Name
		spec.Priority = te.Priority
		ts = r.tstats[te.Name]
	}
	body, _ := json.Marshal(spec)

	ep := r.eps[EndpointSubmit]
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		r.recordErr(ep)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() == nil { // window-close cancellations are not server errors
			r.recordErr(ep)
		}
		return
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	measuring := r.measuring.Load()
	switch resp.StatusCode {
	case http.StatusAccepted:
		if measuring {
			ep.hist.Observe(lat.Seconds())
			ep.count.Add(1)
			r.accepted.Add(1)
			if ts != nil {
				ts.hist.Observe(lat.Seconds())
				ts.accepted.Add(1)
			}
		}
		var j struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(rb, &j) == nil && j.ID != "" {
			r.rememberID(j.ID)
		}
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if measuring {
			r.rejected.Add(1)
			if ts != nil {
				ts.rejected.Add(1)
			}
		}
	default:
		r.recordErr(ep)
	}
}

// pickTenant draws one tenant-mix entry by weight.
func pickTenant(rng *rand.Rand, tenants []TenantEntry) TenantEntry {
	total := 0.0
	for _, te := range tenants {
		total += te.Weight
	}
	pick := rng.Float64() * total
	for _, te := range tenants {
		if pick < te.Weight {
			return te
		}
		pick -= te.Weight
	}
	return tenants[len(tenants)-1]
}

func (r *runner) getPlan(ctx context.Context) {
	ep := r.eps[EndpointPlan]
	// 404 before the first epoch is a well-formed answer, not an error.
	r.timedGet(ctx, ep, "/v1/plan", http.StatusOK, http.StatusNotFound)
}

// getJob reads a recently acked job's status; false if none is known
// yet.
func (r *runner) getJob(ctx context.Context, rng *rand.Rand) bool {
	r.idMu.Lock()
	if len(r.ids) == 0 {
		r.idMu.Unlock()
		return false
	}
	id := r.ids[rng.Intn(len(r.ids))]
	r.idMu.Unlock()
	r.timedGet(ctx, r.eps[EndpointJob], "/v1/jobs/"+id, http.StatusOK)
	return true
}

func (r *runner) timedGet(ctx context.Context, ep *endpointStats, path string, okStatuses ...int) {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+path, nil)
	if err != nil {
		r.recordErr(ep)
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() == nil { // window-close cancellations are not server errors
			r.recordErr(ep)
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	ok := false
	for _, s := range okStatuses {
		if resp.StatusCode == s {
			ok = true
			break
		}
	}
	if !ok {
		r.recordErr(ep)
		return
	}
	if r.measuring.Load() {
		ep.hist.Observe(lat.Seconds())
		ep.count.Add(1)
	}
}

func (r *runner) recordErr(ep *endpointStats) {
	if r.measuring.Load() {
		ep.errors.Add(1)
	}
}

// rememberID keeps a bounded ring of acked job IDs for status reads.
func (r *runner) rememberID(id string) {
	r.idMu.Lock()
	if len(r.ids) < 1024 {
		r.ids = append(r.ids, id)
	} else {
		r.ids[r.idNext] = id
		r.idNext = (r.idNext + 1) % len(r.ids)
	}
	r.idMu.Unlock()
}

// scrapeMetrics fetches and parses the daemon's /metrics exposition
// into a flat name→value map (labeled samples keep their label
// clause).
func (r *runner) scrapeMetrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /metrics -> %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, nil
}

func endpointReport(ep *endpointStats) EndpointReport {
	er := EndpointReport{Count: ep.count.Load(), Errors: ep.errors.Load()}
	if er.Count > 0 {
		h := ep.hist
		er.MeanMs = round3(h.Mean() * 1e3)
		er.P50Ms = round3(h.Quantile(0.5) * 1e3)
		er.P90Ms = round3(h.Quantile(0.9) * 1e3)
		er.P99Ms = round3(h.Quantile(0.99) * 1e3)
		er.P999Ms = round3(h.Quantile(0.999) * 1e3)
		er.MaxMs = round3(h.Max() * 1e3)
	}
	return er
}

// serverStats maps the pre/post /metrics scrapes to the report's
// server-side view: counter deltas over the measurement window, plus
// final gauges.
func serverStats(pre, post map[string]float64) *ServerStats {
	if post == nil {
		return nil
	}
	delta := func(name string) float64 {
		d := post[name]
		if pre != nil {
			d -= pre[name]
		}
		return d
	}
	st := &ServerStats{
		Epochs:         delta("corund_epochs_total"),
		JobsSubmitted:  delta("corund_jobs_submitted_total"),
		JobsDone:       delta("corund_jobs_done_total"),
		JobsRejected:   delta("corund_jobs_rejected_total"),
		JournalAppends: delta("corund_journal_appends_total"),
		JournalFsyncs:  delta("corund_journal_fsyncs_total"),
		JournalBytes:   delta("corund_journal_bytes_total"),
		QueueDepth:     post["corund_queue_depth"],
		SimClockS:      post["corund_sim_clock_seconds"],
		PP0Watts:       post[`corund_domain_watts{domain="pp0"}`],
		PP1Watts:       post[`corund_domain_watts{domain="pp1"}`],
		TempC:          post["corund_temp_celsius"],
		Throttles:      delta("corund_throttle_total"),
	}
	// The binding-constraint gauge vec holds 1 on exactly one series;
	// absent on daemons predating the domain model.
	for _, c := range []string{"none", "pp0", "pp1", "package", "thermal"} {
		if post[`corund_binding_constraint{constraint="`+c+`"}`] == 1 {
			st.BindingConstraint = c
			break
		}
	}
	return st
}

func tenantReport(te TenantEntry, ts *tenantStats) TenantReport {
	tr := TenantReport{
		Share:    te.Weight,
		Priority: te.Priority,
		Accepted: ts.accepted.Load(),
		Rejected: ts.rejected.Load(),
	}
	if tr.Priority == "" {
		tr.Priority = "normal"
	}
	if tr.Accepted > 0 {
		h := ts.hist
		tr.MeanMs = round3(h.Mean() * 1e3)
		tr.P50Ms = round3(h.Quantile(0.5) * 1e3)
		tr.P90Ms = round3(h.Quantile(0.9) * 1e3)
		tr.P99Ms = round3(h.Quantile(0.99) * 1e3)
		tr.P999Ms = round3(h.Quantile(0.999) * 1e3)
		tr.MaxMs = round3(h.Max() * 1e3)
	}
	return tr
}

func formatTenants(tenants []TenantEntry) string {
	if len(tenants) == 0 {
		return ""
	}
	terms := make([]string, len(tenants))
	for i, te := range tenants {
		terms[i] = fmt.Sprintf("%s=%g", te.Name, te.Weight)
		if te.Priority != "" {
			terms[i] += ":" + te.Priority
		}
	}
	sort.Strings(terms)
	return strings.Join(terms, ",")
}

func formatMix(mix []MixEntry) string {
	terms := make([]string, len(mix))
	for i, m := range mix {
		terms[i] = fmt.Sprintf("%s=%g", m.Program, m.Weight)
	}
	sort.Strings(terms)
	return strings.Join(terms, ",")
}

func round3(v float64) float64 {
	return float64(int64(v*1e3+0.5)) / 1e3
}
