package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

// benchIndex stamps the report with the bench-trajectory index of the
// harness's current schema; BENCH_<benchIndex>.json is the canonical
// output name. Bumped to 7 when the multi-tenant mix and per-tenant
// latency sections were added, to 9 for the sharded, async-commit
// serving path (single-node throughput is measured against the
// batched-fsync journal writer from 9 on), and to 10 when the server
// stats grew the per-plane watts, temperature, throttle count, and
// binding-constraint fields of the power-domain model. Fleet runs (the
// harness pointed at a corund -coordinator) stamp benchIndexFleet
// instead — they answer a different question (fleet scaling vs
// single-node serving cost), so they get their own trajectory slot.
const (
	benchIndex      = 10
	benchIndexFleet = 8
)

// RunConfig echoes the harness configuration into the report so a
// future run can be compared like-for-like.
type RunConfig struct {
	BaseURL      string  `json:"base_url"`
	Mode         string  `json:"mode"`
	RateRPS      float64 `json:"rate_rps,omitempty"`
	Concurrency  int     `json:"concurrency,omitempty"`
	WarmupS      float64 `json:"warmup_s"`
	DurationS    float64 `json:"duration_s"`
	MeasuredS    float64 `json:"measured_s"`
	Mix          string  `json:"mix"`
	Tenants      string  `json:"tenants,omitempty"`
	ReadFraction float64 `json:"read_fraction"`
	Seed         int64   `json:"seed"`

	// Policy, HostCPUs, and GOGC disclose the conditions a self-hosted
	// run measured under — the harness fills them in so a throughput
	// headline cannot silently hide the epoch policy it ran with or the
	// core count the daemon, clients, and scheduler time-shared.
	Policy   string `json:"policy,omitempty"`
	HostCPUs int    `json:"host_cpus,omitempty"`
	GOGC     string `json:"gogc,omitempty"`
}

// EndpointReport is one endpoint's measurement window: successful
// requests, errors, and latency quantiles from the log-bucketed
// histogram (conservative and monotone: p50 ≤ p90 ≤ p99 ≤ p999).
type EndpointReport struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanMs float64 `json:"mean_ms,omitempty"`
	P50Ms  float64 `json:"p50_ms,omitempty"`
	P90Ms  float64 `json:"p90_ms,omitempty"`
	P99Ms  float64 `json:"p99_ms,omitempty"`
	P999Ms float64 `json:"p999_ms,omitempty"`
	MaxMs  float64 `json:"max_ms,omitempty"`
}

// TenantReport is one tenant's measurement window: its configured
// share of the offered mix, the priority its submissions carried, the
// accept/reject split, and the ack-latency quantiles — the per-tenant
// answer to "who got in, and how long did they wait".
type TenantReport struct {
	Share    float64 `json:"share"`
	Priority string  `json:"priority"`
	Accepted uint64  `json:"accepted"`
	Rejected uint64  `json:"rejected"`
	MeanMs   float64 `json:"mean_ms,omitempty"`
	P50Ms    float64 `json:"p50_ms,omitempty"`
	P90Ms    float64 `json:"p90_ms,omitempty"`
	P99Ms    float64 `json:"p99_ms,omitempty"`
	P999Ms   float64 `json:"p999_ms,omitempty"`
	MaxMs    float64 `json:"max_ms,omitempty"`
}

// ServerStats is the daemon's own accounting over the measurement
// window, scraped from /metrics: counter deltas plus final gauges.
type ServerStats struct {
	Epochs         float64 `json:"epochs_planned"`
	JobsSubmitted  float64 `json:"jobs_submitted"`
	JobsDone       float64 `json:"jobs_done"`
	JobsRejected   float64 `json:"jobs_rejected"`
	JournalAppends float64 `json:"journal_appends"`
	JournalFsyncs  float64 `json:"journal_fsyncs"`
	JournalBytes   float64 `json:"journal_bytes"`
	QueueDepth     float64 `json:"queue_depth"`
	SimClockS      float64 `json:"sim_clock_s"`

	// The power-domain view of the run: the last epoch's per-plane
	// watts and peak temperature, throttle events over the window, and
	// which constraint (none | pp0 | pp1 | package | thermal) bound the
	// final epoch. Zero/empty against daemons predating the domain
	// model.
	PP0Watts          float64 `json:"pp0_watts,omitempty"`
	PP1Watts          float64 `json:"pp1_watts,omitempty"`
	TempC             float64 `json:"temp_celsius,omitempty"`
	Throttles         float64 `json:"throttle_events,omitempty"`
	BindingConstraint string  `json:"binding_constraint,omitempty"`
}

// MicroResult is one in-process micro-benchmark (testing.Benchmark)
// paired with the HTTP-level run: ns, bytes, and allocations per op.
type MicroResult struct {
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Optimization records one measured hot-path change: the metric it
// moved, the before/after numbers from the same harness, and how they
// were obtained. These entries are maintained by hand in a notes file
// (see MergeNotes) — the harness cannot re-measure code that no
// longer exists.
type Optimization struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Metric      string  `json:"metric"`
	Unit        string  `json:"unit"`
	Before      float64 `json:"before"`
	After       float64 `json:"after"`
	Improvement string  `json:"improvement"`
	Source      string  `json:"source"`
}

// FleetNodeReport is one node's share of a fleet run, read from the
// coordinator's GET /v1/nodes after the measurement window.
type FleetNodeReport struct {
	ID            string  `json:"id"`
	Healthy       bool    `json:"healthy"`
	Routed        uint64  `json:"routed"`
	PlacedCPUPref uint64  `json:"placed_cpu_pref"`
	PlacedGPUPref uint64  `json:"placed_gpu_pref"`
	CapShareWatts float64 `json:"cap_share_watts"`
	// OneSidedFraction is max(cpu,gpu)/(cpu+gpu) of the node's placed
	// mix: 0.5 is a perfectly balanced co-run diet, 1.0 is a node fed
	// only one kind of work (no pairing opportunities).
	OneSidedFraction float64 `json:"one_sided_fraction"`
}

// FleetReport is the fleet-level section of a bench-8 report: how the
// coordinator spread the measured load, plus the throughput ratio
// against the embedded single-node baseline when one was run.
type FleetReport struct {
	Nodes       int     `json:"nodes"`
	Balancer    string  `json:"balancer"`
	BudgetWatts float64 `json:"budget_watts"`
	// HostCPUs qualifies a self-hosted run's speedup figure: every
	// node, the coordinator, and the load clients time-share this many
	// cores, so a fleet cannot beat the baseline's aggregate throughput
	// unless HostCPUs comfortably exceeds the node count. On a 1-CPU
	// host the speedup measures coordination overhead, not scaling.
	HostCPUs int               `json:"host_cpus,omitempty"`
	PerNode  []FleetNodeReport `json:"per_node"`
	// MaxOneSidedFraction is the worst node's OneSidedFraction — the
	// fragmentation headline (≤0.6 means no node was starved of co-run
	// pairings under the mixed workload).
	MaxOneSidedFraction float64 `json:"max_one_sided_fraction"`
	SpeedupVsBaseline   float64 `json:"speedup_vs_baseline,omitempty"`
}

// Report is the harness's machine-readable output (BENCH_7.json, or
// BENCH_8.json for fleet runs).
type Report struct {
	Bench       int       `json:"bench"`
	GeneratedBy string    `json:"generated_by"`
	Config      RunConfig `json:"config"`

	// ThroughputRPS counts every successful measured request;
	// SubmitThroughputRPS only acknowledged submissions.
	ThroughputRPS       float64 `json:"throughput_rps"`
	SubmitThroughputRPS float64 `json:"submit_throughput_rps"`
	Accepted            uint64  `json:"accepted"`
	Rejected            uint64  `json:"rejected"`
	Errors              uint64  `json:"errors"`
	Dropped             uint64  `json:"dropped,omitempty"`

	Endpoints map[string]EndpointReport `json:"endpoints"`
	Tenants   map[string]TenantReport   `json:"tenants,omitempty"`
	Server    *ServerStats              `json:"server,omitempty"`

	// Fleet and Baseline are set on fleet runs: the coordinator's
	// placement evidence and the paired single-node run the speedup is
	// measured against (same machine, same harness, same mix).
	Fleet    *FleetReport `json:"fleet,omitempty"`
	Baseline *Report      `json:"baseline,omitempty"`

	Microbench    map[string]MicroResult `json:"microbench,omitempty"`
	Optimizations []Optimization         `json:"optimizations,omitempty"`
}

// AttachFleet turns the report into a fleet-trajectory report: the
// fleet section is attached, the speedup against the baseline (when
// present) is computed, and the bench index moves to the fleet slot.
func (r *Report) AttachFleet(f *FleetReport, baseline *Report) {
	r.Fleet = f
	r.Baseline = baseline
	r.Bench = benchIndexFleet
	if baseline != nil && baseline.ThroughputRPS > 0 {
		f.SpeedupVsBaseline = round3(r.ThroughputRPS / baseline.ThroughputRPS)
	}
}

// FleetSnapshot reads the coordinator's GET /v1/nodes into a
// FleetReport — the per-node placement evidence (admitted counts,
// CPU/GPU mix, power shares) a fleet bench attaches to its report.
func FleetSnapshot(ctx context.Context, client *http.Client, baseURL string) (*FleetReport, error) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/nodes", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s/v1/nodes -> %d (not a fleet coordinator?)", baseURL, resp.StatusCode)
	}
	var view struct {
		Balancer string `json:"balancer"`
		Nodes    []struct {
			ID            string  `json:"id"`
			Healthy       bool    `json:"healthy"`
			Routed        uint64  `json:"routed"`
			PlacedCPUPref uint64  `json:"placed_cpu_pref"`
			PlacedGPUPref uint64  `json:"placed_gpu_pref"`
			CapShareWatts float64 `json:"cap_share_watts"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /v1/nodes: %w", err)
	}
	f := &FleetReport{Nodes: len(view.Nodes), Balancer: view.Balancer}
	for _, n := range view.Nodes {
		nr := FleetNodeReport{
			ID:            n.ID,
			Healthy:       n.Healthy,
			Routed:        n.Routed,
			PlacedCPUPref: n.PlacedCPUPref,
			PlacedGPUPref: n.PlacedGPUPref,
			CapShareWatts: n.CapShareWatts,
		}
		if total := n.PlacedCPUPref + n.PlacedGPUPref; total > 0 {
			worst := n.PlacedCPUPref
			if n.PlacedGPUPref > worst {
				worst = n.PlacedGPUPref
			}
			nr.OneSidedFraction = round3(float64(worst) / float64(total))
		}
		if nr.OneSidedFraction > f.MaxOneSidedFraction {
			f.MaxOneSidedFraction = nr.OneSidedFraction
		}
		f.PerNode = append(f.PerNode, nr)
	}
	return f, nil
}

// MergeNotes loads a committed optimization-evidence file (a JSON
// array of Optimization entries) into the report. The before numbers
// in such a file were measured by running this same harness against
// the pre-optimization code, so they cannot be regenerated — the file
// is the durable half of the before/after pair.
func (r *Report) MergeNotes(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var notes []Optimization
	if err := json.Unmarshal(b, &notes); err != nil {
		return fmt.Errorf("loadgen: notes %s: %w", path, err)
	}
	r.Optimizations = append(r.Optimizations, notes...)
	return nil
}

// Write renders the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
