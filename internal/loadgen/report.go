package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// benchIndex stamps the report with the bench-trajectory index of the
// harness's current schema; BENCH_<benchIndex>.json is the canonical
// output name. Bumped to 7 when the multi-tenant mix and per-tenant
// latency sections were added.
const benchIndex = 7

// RunConfig echoes the harness configuration into the report so a
// future run can be compared like-for-like.
type RunConfig struct {
	BaseURL      string  `json:"base_url"`
	Mode         string  `json:"mode"`
	RateRPS      float64 `json:"rate_rps,omitempty"`
	Concurrency  int     `json:"concurrency,omitempty"`
	WarmupS      float64 `json:"warmup_s"`
	DurationS    float64 `json:"duration_s"`
	MeasuredS    float64 `json:"measured_s"`
	Mix          string  `json:"mix"`
	Tenants      string  `json:"tenants,omitempty"`
	ReadFraction float64 `json:"read_fraction"`
	Seed         int64   `json:"seed"`
}

// EndpointReport is one endpoint's measurement window: successful
// requests, errors, and latency quantiles from the log-bucketed
// histogram (conservative and monotone: p50 ≤ p90 ≤ p99 ≤ p999).
type EndpointReport struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanMs float64 `json:"mean_ms,omitempty"`
	P50Ms  float64 `json:"p50_ms,omitempty"`
	P90Ms  float64 `json:"p90_ms,omitempty"`
	P99Ms  float64 `json:"p99_ms,omitempty"`
	P999Ms float64 `json:"p999_ms,omitempty"`
	MaxMs  float64 `json:"max_ms,omitempty"`
}

// TenantReport is one tenant's measurement window: its configured
// share of the offered mix, the priority its submissions carried, the
// accept/reject split, and the ack-latency quantiles — the per-tenant
// answer to "who got in, and how long did they wait".
type TenantReport struct {
	Share    float64 `json:"share"`
	Priority string  `json:"priority"`
	Accepted uint64  `json:"accepted"`
	Rejected uint64  `json:"rejected"`
	MeanMs   float64 `json:"mean_ms,omitempty"`
	P50Ms    float64 `json:"p50_ms,omitempty"`
	P90Ms    float64 `json:"p90_ms,omitempty"`
	P99Ms    float64 `json:"p99_ms,omitempty"`
	P999Ms   float64 `json:"p999_ms,omitempty"`
	MaxMs    float64 `json:"max_ms,omitempty"`
}

// ServerStats is the daemon's own accounting over the measurement
// window, scraped from /metrics: counter deltas plus final gauges.
type ServerStats struct {
	Epochs         float64 `json:"epochs_planned"`
	JobsSubmitted  float64 `json:"jobs_submitted"`
	JobsDone       float64 `json:"jobs_done"`
	JobsRejected   float64 `json:"jobs_rejected"`
	JournalAppends float64 `json:"journal_appends"`
	JournalFsyncs  float64 `json:"journal_fsyncs"`
	JournalBytes   float64 `json:"journal_bytes"`
	QueueDepth     float64 `json:"queue_depth"`
	SimClockS      float64 `json:"sim_clock_s"`
}

// MicroResult is one in-process micro-benchmark (testing.Benchmark)
// paired with the HTTP-level run: ns, bytes, and allocations per op.
type MicroResult struct {
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Optimization records one measured hot-path change: the metric it
// moved, the before/after numbers from the same harness, and how they
// were obtained. These entries are maintained by hand in a notes file
// (see MergeNotes) — the harness cannot re-measure code that no
// longer exists.
type Optimization struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Metric      string  `json:"metric"`
	Unit        string  `json:"unit"`
	Before      float64 `json:"before"`
	After       float64 `json:"after"`
	Improvement string  `json:"improvement"`
	Source      string  `json:"source"`
}

// Report is the harness's machine-readable output (BENCH_7.json).
type Report struct {
	Bench       int       `json:"bench"`
	GeneratedBy string    `json:"generated_by"`
	Config      RunConfig `json:"config"`

	// ThroughputRPS counts every successful measured request;
	// SubmitThroughputRPS only acknowledged submissions.
	ThroughputRPS       float64 `json:"throughput_rps"`
	SubmitThroughputRPS float64 `json:"submit_throughput_rps"`
	Accepted            uint64  `json:"accepted"`
	Rejected            uint64  `json:"rejected"`
	Errors              uint64  `json:"errors"`
	Dropped             uint64  `json:"dropped,omitempty"`

	Endpoints map[string]EndpointReport `json:"endpoints"`
	Tenants   map[string]TenantReport   `json:"tenants,omitempty"`
	Server    *ServerStats              `json:"server,omitempty"`

	Microbench    map[string]MicroResult `json:"microbench,omitempty"`
	Optimizations []Optimization         `json:"optimizations,omitempty"`
}

// MergeNotes loads a committed optimization-evidence file (a JSON
// array of Optimization entries) into the report. The before numbers
// in such a file were measured by running this same harness against
// the pre-optimization code, so they cannot be regenerated — the file
// is the durable half of the before/after pair.
func (r *Report) MergeNotes(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var notes []Optimization
	if err := json.Unmarshal(b, &notes); err != nil {
		return fmt.Errorf("loadgen: notes %s: %w", path, err)
	}
	r.Optimizations = append(r.Optimizations, notes...)
	return nil
}

// Write renders the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
