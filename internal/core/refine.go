package core

import (
	"math/rand"

	"corun/internal/units"
)

// RefineOptions configures the post local refinement (section IV-A.3).
type RefineOptions struct {
	// RandomSwaps is the number of random swap attempts in each of the
	// random steps; zero defaults to twice the job count.
	RandomSwaps int

	// Seed drives the random steps deterministically.
	Seed int64

	// SkipAdjacent, SkipRandomInQueue, and SkipCross disable the
	// corresponding refinement step (ablation).
	SkipAdjacent      bool
	SkipRandomInQueue bool
	SkipCross         bool
}

// Refine applies the paper's 3-step local refinement to a schedule and
// returns the (possibly improved) result together with its predicted
// makespan:
//
//  1. try swapping every two adjacent jobs on each device;
//  2. try swapping two randomly picked jobs within a device's list;
//  3. try swapping two jobs across the two devices.
//
// Every step keeps a swap only if the predicted makespan improves. The
// cost is linear in the job count and the sample counts.
func (cx *Context) Refine(s *Schedule, opts RefineOptions) (*Schedule, units.Seconds, error) {
	best := s.Clone()
	bestT, err := cx.PredictedMakespan(best)
	if err != nil {
		return nil, 0, err
	}
	n := len(best.CPUOrder) + len(best.GPUOrder)
	swaps := opts.RandomSwaps
	if swaps <= 0 {
		swaps = 2 * n
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	try := func(mutate func(*Schedule)) {
		cand := best.Clone()
		mutate(cand)
		t, err := cx.PredictedMakespan(cand)
		if err == nil && t < bestT {
			best, bestT = cand, t
		}
	}

	// Step 1: adjacent swaps, CPU list then GPU list.
	if !opts.SkipAdjacent {
		for _, getQ := range []func(*Schedule) []int{
			func(s *Schedule) []int { return s.CPUOrder },
			func(s *Schedule) []int { return s.GPUOrder },
		} {
			for i := 0; i+1 < len(getQ(best)); i++ {
				i := i
				try(func(c *Schedule) {
					q := getQ(c)
					q[i], q[i+1] = q[i+1], q[i]
				})
			}
		}
	}

	// Step 2: random in-device swaps.
	for k := 0; !opts.SkipRandomInQueue && k < swaps; k++ {
		useCPU := rng.Intn(2) == 0
		q := best.CPUOrder
		if !useCPU {
			q = best.GPUOrder
		}
		if len(q) < 2 {
			continue
		}
		i, j := rng.Intn(len(q)), rng.Intn(len(q))
		if i == j {
			continue
		}
		try(func(c *Schedule) {
			qq := c.CPUOrder
			if !useCPU {
				qq = c.GPUOrder
			}
			qq[i], qq[j] = qq[j], qq[i]
		})
	}

	// Step 3: random cross-device swaps.
	for k := 0; !opts.SkipCross && k < swaps; k++ {
		if len(best.CPUOrder) == 0 || len(best.GPUOrder) == 0 {
			break
		}
		i, j := rng.Intn(len(best.CPUOrder)), rng.Intn(len(best.GPUOrder))
		try(func(c *Schedule) {
			c.CPUOrder[i], c.GPUOrder[j] = c.GPUOrder[j], c.CPUOrder[i]
		})
	}

	return best, bestT, nil
}

// HCSPlus runs HCS followed by the post local refinement.
func (cx *Context) HCSPlus(hcsOpts HCSOptions, refOpts RefineOptions) (*Schedule, units.Seconds, error) {
	s, err := cx.HCS(hcsOpts)
	if err != nil {
		return nil, 0, err
	}
	return cx.Refine(s, refOpts)
}
