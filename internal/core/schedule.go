package core

import (
	"fmt"
	"strconv"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// Schedule is a planned co-schedule: one dispatch order per device plus
// the set of jobs that must run exclusively (leaving the other device
// idle). Frequencies are not stored — they are a pure function of the
// co-running pair via Context.ChoosePairFreqs, both in planning and in
// execution, exactly as the runtime re-evaluates DVFS at each dispatch.
type Schedule struct {
	// CPUOrder and GPUOrder hold job indices in dispatch order.
	CPUOrder []int
	GPUOrder []int

	// Exclusive marks jobs that run with the other device idle (the
	// S_seq set of step 1).
	Exclusive map[int]bool
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{
		CPUOrder:  append([]int(nil), s.CPUOrder...),
		GPUOrder:  append([]int(nil), s.GPUOrder...),
		Exclusive: make(map[int]bool, len(s.Exclusive)),
	}
	for k, v := range s.Exclusive {
		out.Exclusive[k] = v
	}
	return out
}

// Jobs returns every job index in the schedule.
func (s *Schedule) Jobs() []int {
	out := append([]int(nil), s.CPUOrder...)
	return append(out, s.GPUOrder...)
}

// Validate checks that the schedule covers each of n jobs exactly once.
func (s *Schedule) Validate(n int) error {
	seen := make([]bool, n)
	for _, j := range s.Jobs() {
		if j < 0 || j >= n {
			return fmt.Errorf("core: schedule references job %d outside [0,%d)", j, n)
		}
		if seen[j] {
			return fmt.Errorf("core: schedule lists job %d twice", j)
		}
		seen[j] = true
	}
	for j, ok := range seen {
		if !ok {
			return fmt.Errorf("core: schedule misses job %d", j)
		}
	}
	return nil
}

// String renders the schedule compactly.
func (s *Schedule) String() string {
	mark := func(j int) string {
		if s.Exclusive[j] {
			return fmt.Sprintf("%d!", j)
		}
		return fmt.Sprintf("%d", j)
	}
	cpu := make([]string, len(s.CPUOrder))
	for i, j := range s.CPUOrder {
		cpu[i] = mark(j)
	}
	gpu := make([]string, len(s.GPUOrder))
	for i, j := range s.GPUOrder {
		gpu[i] = mark(j)
	}
	return fmt.Sprintf("CPU:%v GPU:%v", cpu, gpu)
}

// plannedJob tracks one job's progress in the predicted evaluator.
type plannedJob struct {
	idx  int
	frac float64 // fraction of the job's work still to do
}

// memoKey encodes the schedule's planning-relevant content — both
// dispatch orders with per-job exclusivity marks — as the predicted-
// makespan memo key.
func (s *Schedule) memoKey() string {
	b := make([]byte, 0, 4*(len(s.CPUOrder)+len(s.GPUOrder))+1)
	appendQ := func(q []int) {
		for _, j := range q {
			b = strconv.AppendInt(b, int64(j), 10)
			if s.Exclusive[j] {
				b = append(b, '!')
			}
			b = append(b, ',')
		}
	}
	appendQ(s.CPUOrder)
	b = append(b, '|')
	appendQ(s.GPUOrder)
	return string(b)
}

// PredictedMakespan evaluates the schedule on predicted data: it walks
// the two queues with the same dispatch and exclusivity rules the
// executor uses, applying ChoosePairFreqs to every pairing and the
// side-note partial-overlap arithmetic to every segment. It is the
// objective function of the HCS+ refinement and of the search
// policies, which revisit candidate schedules, so successful
// evaluations are memoized (bounded; see maxMakespanMemo).
func (cx *Context) PredictedMakespan(s *Schedule) (units.Seconds, error) {
	if err := s.Validate(cx.Oracle.NumJobs()); err != nil {
		return 0, err
	}
	key := s.memoKey()
	cx.mu.Lock()
	if t, ok := cx.msMemo[key]; ok {
		cx.mu.Unlock()
		return t, nil
	}
	cx.mu.Unlock()
	t, err := cx.predictedMakespanUncached(s)
	if err != nil {
		return 0, err
	}
	cx.mu.Lock()
	if len(cx.msMemo) < maxMakespanMemo {
		cx.msMemo[key] = t
	}
	cx.mu.Unlock()
	return t, nil
}

func (cx *Context) predictedMakespanUncached(s *Schedule) (units.Seconds, error) {
	cpuQ := append([]int(nil), s.CPUOrder...)
	gpuQ := append([]int(nil), s.GPUOrder...)
	var cpuRun, gpuRun *plannedJob
	now := 0.0

	const maxSegments = 1 << 20
	for seg := 0; seg < maxSegments; seg++ {
		// Dispatch, honouring exclusivity.
		if cpuRun == nil && len(cpuQ) > 0 {
			head := cpuQ[0]
			if cx.mayDispatch(s, head, gpuRun) {
				cpuRun = &plannedJob{idx: head, frac: 1}
				cpuQ = cpuQ[1:]
			}
		}
		if gpuRun == nil && len(gpuQ) > 0 {
			head := gpuQ[0]
			if cx.mayDispatch(s, head, cpuRun) {
				gpuRun = &plannedJob{idx: head, frac: 1}
				gpuQ = gpuQ[1:]
			}
		}
		if cpuRun == nil && gpuRun == nil {
			if len(cpuQ) == 0 && len(gpuQ) == 0 {
				return units.Seconds(now), nil
			}
			return 0, fmt.Errorf("core: schedule deadlocked with %d CPU / %d GPU jobs pending", len(cpuQ), len(gpuQ))
		}

		// Rates for the current pairing.
		ci, gi := -1, -1
		if cpuRun != nil {
			ci = cpuRun.idx
		}
		if gpuRun != nil {
			gi = gpuRun.idx
		}
		fp, dc, dg, ok := cx.ChoosePairFreqs(ci, gi)
		if !ok {
			return 0, fmt.Errorf("core: no cap-feasible frequencies for pair (%d,%d)", ci, gi)
		}
		var cpuRate, gpuRate float64 // fraction of job per second
		if cpuRun != nil {
			l := float64(cx.Oracle.StandaloneTime(ci, apu.CPU, fp.CPU)) * (1 + dc)
			cpuRate = 1 / l
		}
		if gpuRun != nil {
			l := float64(cx.Oracle.StandaloneTime(gi, apu.GPU, fp.GPU)) * (1 + dg)
			gpuRate = 1 / l
		}

		// Advance to the earliest completion.
		dt := 0.0
		switch {
		case cpuRun != nil && gpuRun != nil:
			dt = minPos(cpuRun.frac/cpuRate, gpuRun.frac/gpuRate)
		case cpuRun != nil:
			dt = cpuRun.frac / cpuRate
		default:
			dt = gpuRun.frac / gpuRate
		}
		now += dt
		if cpuRun != nil {
			cpuRun.frac -= cpuRate * dt
			if cpuRun.frac <= 1e-12 {
				cpuRun = nil
			}
		}
		if gpuRun != nil {
			gpuRun.frac -= gpuRate * dt
			if gpuRun.frac <= 1e-12 {
				gpuRun = nil
			}
		}
	}
	return 0, fmt.Errorf("core: predicted evaluation exceeded segment limit")
}

// mayDispatch applies the exclusivity rule: an exclusive job waits for
// the other device to drain, and nothing starts beside a running
// exclusive job.
func (cx *Context) mayDispatch(s *Schedule, job int, otherRun *plannedJob) bool {
	if otherRun == nil {
		return true
	}
	if s.Exclusive[job] || s.Exclusive[otherRun.idx] {
		return false
	}
	return true
}

func minPos(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// scheduleDispatcher executes a Schedule on the real simulator with the
// same rules as the predicted evaluator.
type scheduleDispatcher struct {
	cx    *Context
	s     *Schedule
	batch []*workload.Instance
	cpuQ  []int
	gpuQ  []int
}

func newScheduleDispatcher(cx *Context, s *Schedule, batch []*workload.Instance) *scheduleDispatcher {
	return &scheduleDispatcher{
		cx: cx, s: s, batch: batch,
		cpuQ: append([]int(nil), s.CPUOrder...),
		gpuQ: append([]int(nil), s.GPUOrder...),
	}
}

// Next implements sim.Dispatcher.
func (d *scheduleDispatcher) Next(dev apu.Device, view *sim.View) *sim.Dispatch {
	var q *[]int
	if dev == apu.CPU {
		q = &d.cpuQ
	} else {
		q = &d.gpuQ
	}
	if len(*q) == 0 {
		return nil
	}
	head := (*q)[0]

	// Identify the job on the other device, if any.
	var other *workload.Instance
	if dev == apu.CPU {
		other = view.GPUJob
	} else if len(view.CPUJobs) > 0 {
		other = view.CPUJobs[0]
	}
	if other != nil && (d.s.Exclusive[head] || d.s.Exclusive[other.ID]) {
		return nil // wait for the other device to drain
	}

	otherIdx := -1
	if other != nil {
		otherIdx = other.ID
	}
	ci, gi := head, otherIdx
	if dev == apu.GPU {
		ci, gi = otherIdx, head
	}
	fp, _, _, ok := d.cx.ChoosePairFreqs(ci, gi)
	if !ok {
		// No feasible setting: fall back to the floor frequencies and
		// let the cap-violation accounting surface the problem.
		fp = FreqPair{0, 0}
	}
	*q = (*q)[1:]
	return &sim.Dispatch{Inst: d.batch[head], CPUFreq: fp.CPU, GPUFreq: fp.GPU}
}

// planGovernor re-applies the planned frequency choice to whatever pair
// is actually running. Dispatch directives already set pair frequencies
// at job starts; the governor covers the remaining transitions — most
// importantly a device draining its queue, after which the survivor
// must be re-upgraded to its best solo operating point instead of
// crawling at the stale co-run setting.
type planGovernor struct {
	cx *Context
}

// Adjust implements sim.Governor.
func (g *planGovernor) Adjust(power units.Watts, view *sim.View, cfg *apu.Config) (int, int) {
	ci, gi := -1, -1
	if len(view.CPUJobs) > 0 {
		ci = view.CPUJobs[0].ID
	}
	if view.GPUJob != nil {
		gi = view.GPUJob.ID
	}
	if ci < 0 && gi < 0 {
		return view.CPUFreq, view.GPUFreq
	}
	fp, _, _, ok := g.cx.ChoosePairFreqs(ci, gi)
	if !ok {
		return view.CPUFreq, view.GPUFreq
	}
	return fp.CPU, fp.GPU
}

// ExecOptions configures schedule execution on the simulator.
type ExecOptions struct {
	Cfg *apu.Config
	Mem *memsys.Model
	// Cap is the package power cap enforced/reported during execution.
	Cap units.Watts
	// Domains are optional per-plane caps enforced/reported alongside
	// Cap (see Context.Domains).
	Domains apu.DomainCaps
}

// Execute runs the schedule on the ground-truth simulator. Instance IDs
// in the batch must equal their indices (as produced by the workload
// package).
func (cx *Context) Execute(s *Schedule, batch []*workload.Instance, opts ExecOptions) (*sim.Result, error) {
	if err := s.Validate(len(batch)); err != nil {
		return nil, err
	}
	for i, in := range batch {
		if in.ID != i {
			return nil, fmt.Errorf("core: batch instance %d has ID %d; IDs must equal indices", i, in.ID)
		}
	}
	simOpts := sim.Options{
		Cfg:        opts.Cfg,
		Mem:        opts.Mem,
		PowerCap:   opts.Cap,
		DomainCaps: opts.Domains,
		Governor:   &planGovernor{cx: cx},
		// The planned schedule controls frequencies; start from the
		// floor so the first dispatch's directive decides.
		InitCPUFreq: sim.Pin(0),
		InitGPUFreq: sim.Pin(0),
	}
	return sim.Run(simOpts, newScheduleDispatcher(cx, s, batch))
}
