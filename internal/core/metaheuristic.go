package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"corun/internal/apu"
	"corun/internal/units"
)

// The paper's local refinement is deliberately cheap (linear). The two
// metaheuristics here explore the same schedule space harder, at a cost
// the paper's online budget would not allow; they bound how much the
// cheap refinement leaves on the table. Simulated annealing perturbs
// one schedule; the genetic search (the direction of Phan et al., cited
// in the paper's related work) evolves a population.

// AnnealOptions configures simulated annealing.
type AnnealOptions struct {
	// Iterations is the number of proposed moves; zero defaults to
	// 2000.
	Iterations int
	// InitialTemp is the starting temperature relative to the initial
	// predicted makespan; zero defaults to 0.05 (5% uphill moves are
	// plausible early).
	InitialTemp float64
	// Seed drives the proposal chain.
	Seed int64
}

// Anneal improves a schedule by simulated annealing on the predicted
// makespan, using the same move set as the paper's refinement (adjacent
// swaps, in-queue swaps, cross-device swaps) plus job migration between
// queues. It returns the best schedule found and its predicted makespan.
func (cx *Context) Anneal(s *Schedule, opts AnnealOptions) (*Schedule, units.Seconds, error) {
	iters := opts.Iterations
	if iters <= 0 {
		iters = 2000
	}
	t0 := opts.InitialTemp
	if t0 <= 0 {
		t0 = 0.05
	}
	cur := s.Clone()
	curT, err := cx.PredictedMakespan(cur)
	if err != nil {
		return nil, 0, err
	}
	best, bestT := cur.Clone(), curT
	rng := rand.New(rand.NewSource(opts.Seed))

	for k := 0; k < iters; k++ {
		cand := cur.Clone()
		mutateSchedule(cand, rng)
		candT, err := cx.PredictedMakespan(cand)
		if err != nil {
			continue // infeasible proposal; skip
		}
		temp := t0 * float64(curT) * (1 - float64(k)/float64(iters))
		delta := float64(candT - curT)
		if delta <= 0 || (temp > 0 && rng.Float64() < math.Exp(-delta/temp)) {
			cur, curT = cand, candT
			if curT < bestT {
				best, bestT = cur.Clone(), curT
			}
		}
	}
	return best, bestT, nil
}

// mutateSchedule applies one random move in place.
func mutateSchedule(s *Schedule, rng *rand.Rand) {
	type move int
	const (
		swapInCPU move = iota
		swapInGPU
		swapAcross
		migrate
	)
	for attempts := 0; attempts < 8; attempts++ {
		switch move(rng.Intn(4)) {
		case swapInCPU:
			if len(s.CPUOrder) >= 2 {
				i, j := rng.Intn(len(s.CPUOrder)), rng.Intn(len(s.CPUOrder))
				s.CPUOrder[i], s.CPUOrder[j] = s.CPUOrder[j], s.CPUOrder[i]
				return
			}
		case swapInGPU:
			if len(s.GPUOrder) >= 2 {
				i, j := rng.Intn(len(s.GPUOrder)), rng.Intn(len(s.GPUOrder))
				s.GPUOrder[i], s.GPUOrder[j] = s.GPUOrder[j], s.GPUOrder[i]
				return
			}
		case swapAcross:
			if len(s.CPUOrder) > 0 && len(s.GPUOrder) > 0 {
				i, j := rng.Intn(len(s.CPUOrder)), rng.Intn(len(s.GPUOrder))
				s.CPUOrder[i], s.GPUOrder[j] = s.GPUOrder[j], s.CPUOrder[i]
				return
			}
		case migrate:
			// Move one job to a random position on the other device.
			if len(s.CPUOrder) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(s.CPUOrder))
				j := s.CPUOrder[i]
				s.CPUOrder = append(s.CPUOrder[:i], s.CPUOrder[i+1:]...)
				pos := 0
				if len(s.GPUOrder) > 0 {
					pos = rng.Intn(len(s.GPUOrder) + 1)
				}
				s.GPUOrder = append(s.GPUOrder[:pos], append([]int{j}, s.GPUOrder[pos:]...)...)
				return
			}
			if len(s.GPUOrder) > 0 {
				i := rng.Intn(len(s.GPUOrder))
				j := s.GPUOrder[i]
				s.GPUOrder = append(s.GPUOrder[:i], s.GPUOrder[i+1:]...)
				pos := 0
				if len(s.CPUOrder) > 0 {
					pos = rng.Intn(len(s.CPUOrder) + 1)
				}
				s.CPUOrder = append(s.CPUOrder[:pos], append([]int{j}, s.CPUOrder[pos:]...)...)
				return
			}
		}
	}
}

// GeneticOptions configures the evolutionary search.
type GeneticOptions struct {
	// Population size; zero defaults to 24.
	Population int
	// Generations; zero defaults to 60.
	Generations int
	// MutationRate is the per-offspring mutation probability; zero
	// defaults to 0.3.
	MutationRate float64
	// Seed drives the evolution.
	Seed int64
	// SeedSchedule, if non-nil, joins the initial population (e.g. the
	// HCS output).
	SeedSchedule *Schedule
	// Workers bounds the pool that evaluates candidate fitness in
	// parallel; zero picks a machine-sized default, one forces serial
	// evaluation. The search result is identical for every worker
	// count: candidates are generated sequentially from the seed and
	// only their (pure) fitness evaluations fan out.
	Workers int
}

// Genetic evolves a population of schedules under the predicted-
// makespan fitness and returns the best individual.
func (cx *Context) Genetic(opts GeneticOptions) (*Schedule, units.Seconds, error) {
	n := cx.Oracle.NumJobs()
	if n == 0 {
		return &Schedule{Exclusive: map[int]bool{}}, 0, nil
	}
	pop := opts.Population
	if pop <= 0 {
		pop = 24
	}
	gens := opts.Generations
	if gens <= 0 {
		gens = 60
	}
	mut := opts.MutationRate
	if mut <= 0 {
		mut = 0.3
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	type indiv struct {
		s *Schedule
		t units.Seconds
	}
	// evalBatch scores a candidate batch across the worker pool and
	// returns the feasible ones in generation order, so the outcome is
	// independent of the worker count (fitness is a pure function of
	// the schedule; the context's memo tables are lock-guarded).
	evalBatch := func(cands []*Schedule) []indiv {
		type scored struct {
			t  units.Seconds
			ok bool
		}
		scores := make([]scored, len(cands))
		workers := boundedWorkers(opts.Workers, len(cands))
		if workers == 1 {
			for i, s := range cands {
				t, err := cx.PredictedMakespan(s)
				scores[i] = scored{t, err == nil}
			}
		} else {
			idx := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						t, err := cx.PredictedMakespan(cands[i])
						scores[i] = scored{t, err == nil}
					}
				}()
			}
			for i := range cands {
				idx <- i
			}
			close(idx)
			wg.Wait()
		}
		out := make([]indiv, 0, len(cands))
		for i, sc := range scores {
			if sc.ok {
				out = append(out, indiv{s: cands[i], t: sc.t})
			}
		}
		return out
	}

	var people []indiv
	if opts.SeedSchedule != nil {
		people = append(people, evalBatch([]*Schedule{opts.SeedSchedule.Clone()})...)
	}
	for len(people) < pop {
		cands := make([]*Schedule, 0, pop-len(people))
		for len(cands) < pop-len(people) {
			cands = append(cands, randomSchedule(n, rng))
		}
		people = append(people, evalBatch(cands)...)
	}

	tournament := func() indiv {
		best := people[rng.Intn(len(people))]
		for k := 0; k < 2; k++ {
			c := people[rng.Intn(len(people))]
			if c.t < best.t {
				best = c
			}
		}
		return best
	}

	for g := 0; g < gens; g++ {
		var next []indiv
		// Elitism: carry the champion.
		champ := people[0]
		for _, iv := range people {
			if iv.t < champ.t {
				champ = iv
			}
		}
		next = append(next, champ)
		for len(next) < pop {
			cands := make([]*Schedule, 0, pop-len(next))
			for len(cands) < pop-len(next) {
				a, b := tournament(), tournament()
				child := crossover(a.s, b.s, n, rng)
				if rng.Float64() < mut {
					mutateSchedule(child, rng)
				}
				cands = append(cands, child)
			}
			next = append(next, evalBatch(cands)...)
		}
		people = next
	}
	best := people[0]
	for _, iv := range people {
		if iv.t < best.t {
			best = iv
		}
	}
	if err := best.s.Validate(n); err != nil {
		return nil, 0, fmt.Errorf("core: genetic search produced an invalid schedule: %w", err)
	}
	return best.s, best.t, nil
}

// randomSchedule assigns each job to a random device with preference-
// free random order.
func randomSchedule(n int, rng *rand.Rand) *Schedule {
	s := &Schedule{Exclusive: map[int]bool{}}
	perm := rng.Perm(n)
	for _, j := range perm {
		if rng.Intn(2) == 0 {
			s.CPUOrder = append(s.CPUOrder, j)
		} else {
			s.GPUOrder = append(s.GPUOrder, j)
		}
	}
	return s
}

// crossover builds a child that inherits each job's device from a
// random parent and its relative order from parent a.
func crossover(a, b *Schedule, n int, rng *rand.Rand) *Schedule {
	devOf := func(s *Schedule) map[int]apu.Device {
		m := make(map[int]apu.Device, n)
		for _, j := range s.CPUOrder {
			m[j] = apu.CPU
		}
		for _, j := range s.GPUOrder {
			m[j] = apu.GPU
		}
		return m
	}
	da, db := devOf(a), devOf(b)
	child := &Schedule{Exclusive: map[int]bool{}}
	// Order template: parent a's concatenated order.
	order := append(append([]int(nil), a.CPUOrder...), a.GPUOrder...)
	for _, j := range order {
		dev := da[j]
		if rng.Intn(2) == 0 {
			dev = db[j]
		}
		if dev == apu.CPU {
			child.CPUOrder = append(child.CPUOrder, j)
		} else {
			child.GPUOrder = append(child.GPUOrder, j)
		}
	}
	return child
}
