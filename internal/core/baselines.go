package core

import (
	"fmt"
	"math/rand"
	"sort"

	"corun/internal/apu"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

// randomDispatcher implements the Random baseline (section VI-A):
// whenever a processor goes idle it picks a random remaining job — or
// occasionally leaves the processor idle until the other device's
// current job completes, since some jobs prefer running alone.
type randomDispatcher struct {
	rng       *rand.Rand
	remaining []int
	batch     []*workload.Instance

	// idleUntil[dev] records the co-runner the device decided to wait
	// out; the decision holds until that job changes.
	idleUntil [apu.NumDevices]*workload.Instance
	idleSet   [apu.NumDevices]bool
}

func newRandomDispatcher(batch []*workload.Instance, seed int64) *randomDispatcher {
	d := &randomDispatcher{rng: rand.New(rand.NewSource(seed)), batch: batch}
	for i := range batch {
		d.remaining = append(d.remaining, i)
	}
	return d
}

// Next implements sim.Dispatcher.
func (d *randomDispatcher) Next(dev apu.Device, view *sim.View) *sim.Dispatch {
	if len(d.remaining) == 0 {
		return nil
	}
	var other *workload.Instance
	if dev == apu.CPU {
		other = view.GPUJob
	} else if len(view.CPUJobs) > 0 {
		other = view.CPUJobs[0]
	}

	// Honour a standing idle decision while the co-runner is unchanged.
	if d.idleSet[dev] {
		if other != nil && other == d.idleUntil[dev] {
			return nil
		}
		d.idleSet[dev] = false
	}

	// Idling is only an option when the other device is busy;
	// otherwise the machine would deadlock.
	options := len(d.remaining)
	if other != nil {
		options++
	}
	pick := d.rng.Intn(options)
	if pick == len(d.remaining) {
		d.idleSet[dev] = true
		d.idleUntil[dev] = other
		return nil
	}
	j := d.remaining[pick]
	d.remaining = append(d.remaining[:pick], d.remaining[pick+1:]...)
	return &sim.Dispatch{Inst: d.batch[j], CPUFreq: -1, GPUFreq: -1}
}

// ExecuteRandom runs the Random baseline once with the given seed. The
// power cap is enforced by the biased reactive governor, as in the
// paper's comparison (GPU-biased by default there).
func ExecuteRandom(opts ExecOptions, batch []*workload.Instance, seed int64, bias sim.Bias) (*sim.Result, error) {
	simOpts := sim.Options{
		Cfg:        opts.Cfg,
		Mem:        opts.Mem,
		PowerCap:   opts.Cap,
		DomainCaps: opts.Domains,
	}
	if opts.Cap > 0 || opts.Domains.Any() {
		simOpts.Governor = &sim.BiasedGovernor{Cap: opts.Cap, Domains: opts.Domains, Bias: bias}
	}
	return sim.Run(simOpts, newRandomDispatcher(batch, seed))
}

// RandomAverage runs ExecuteRandom over n seeds (0..n-1 offset by
// seedBase) and returns the mean makespan along with the individual
// results. The paper averages 20 seeds.
func RandomAverage(opts ExecOptions, batch []*workload.Instance, n int, seedBase int64, bias sim.Bias) (units.Seconds, []*sim.Result, error) {
	if n <= 0 {
		return 0, nil, fmt.Errorf("core: need at least one random seed")
	}
	var results []*sim.Result
	sum := 0.0
	for s := 0; s < n; s++ {
		r, err := ExecuteRandom(opts, batch, seedBase+int64(s), bias)
		if err != nil {
			return 0, nil, err
		}
		results = append(results, r)
		sum += float64(r.Makespan)
	}
	return units.Seconds(sum / float64(n)), results, nil
}

// RandomPlan builds the planned-schedule form of the Random baseline:
// each job lands on a random device in random order, with no exclusive
// marks. Unlike ExecuteRandom — the paper's dispatcher-driven baseline,
// which re-rolls at every idle processor — this is a plain Schedule, so
// it can flow through the same predicted-makespan evaluation and
// execution paths as every planned policy.
func RandomPlan(n int, seed int64) *Schedule {
	return randomSchedule(n, rand.New(rand.NewSource(seed)))
}

// DefaultPartition reproduces the Default baseline's job placement:
// rank programs by the ratio of standalone CPU time to GPU time at the
// highest frequency, give the most GPU-leaning prefix to the GPU, and
// choose the split that minimizes the larger partition's total
// execution time.
func DefaultPartition(o Oracle, cfg *apu.Config) (cpuJobs, gpuJobs []int) {
	n := o.NumJobs()
	cmax := cfg.MaxFreqIndex(apu.CPU)
	gmax := cfg.MaxFreqIndex(apu.GPU)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ratio := func(i int) float64 {
		return float64(o.StandaloneTime(i, apu.CPU, cmax)) / float64(o.StandaloneTime(i, apu.GPU, gmax))
	}
	sort.SliceStable(order, func(a, b int) bool { return ratio(order[a]) > ratio(order[b]) })

	bestK, bestMax := 0, -1.0
	for k := 0; k <= n; k++ {
		sumG, sumC := 0.0, 0.0
		for _, j := range order[:k] {
			sumG += float64(o.StandaloneTime(j, apu.GPU, gmax))
		}
		for _, j := range order[k:] {
			sumC += float64(o.StandaloneTime(j, apu.CPU, cmax))
		}
		m := sumG
		if sumC > m {
			m = sumC
		}
		if bestMax < 0 || m < bestMax {
			bestK, bestMax = k, m
		}
	}
	gpuJobs = append([]int(nil), order[:bestK]...)
	cpuJobs = append([]int(nil), order[bestK:]...)
	return cpuJobs, gpuJobs
}

// ExecuteDefault runs the Default baseline: the GPU partition executes
// sequentially while the whole CPU partition is launched at once and
// time-shares the cores under the OS scheduler, exactly the behaviour
// the paper attributes to the Linux default schedule. The biased
// reactive governor enforces the cap.
func ExecuteDefault(opts ExecOptions, batch []*workload.Instance, o Oracle, bias sim.Bias) (*sim.Result, error) {
	cpuJobs, gpuJobs := DefaultPartition(o, opts.Cfg)
	var cpuQ, gpuQ []*workload.Instance
	for _, j := range cpuJobs {
		cpuQ = append(cpuQ, batch[j])
	}
	for _, j := range gpuJobs {
		gpuQ = append(gpuQ, batch[j])
	}
	simOpts := sim.Options{
		Cfg:        opts.Cfg,
		Mem:        opts.Mem,
		PowerCap:   opts.Cap,
		DomainCaps: opts.Domains,
		CPUSlots:   maxInt(1, len(cpuQ)),
	}
	if opts.Cap > 0 || opts.Domains.Any() {
		simOpts.Governor = &sim.BiasedGovernor{Cap: opts.Cap, Domains: opts.Domains, Bias: bias}
	}
	return sim.Run(simOpts, sim.NewQueueDispatcher(cpuQ, gpuQ, nil))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
