// Package core implements the paper's algorithmic contributions: the
// Co-Run Theorem, the heuristic co-scheduling algorithm (HCS), its
// post local refinement (HCS+), the optimal-makespan lower bound, and
// the Random and Default baseline schedulers.
//
// All algorithms consume an Oracle — predicted standalone times,
// pairwise co-run degradations, and powers at every frequency setting.
// In the full system the oracle is the staged-interpolation model of
// section V (package model); for ablations it can be the ground-truth
// simulator itself.
package core

import (
	"fmt"
	"sync"

	"corun/internal/apu"
	"corun/internal/units"
)

// Oracle supplies the performance and power estimates the scheduling
// algorithms reason over. Implementations: model.Predictor (the paper's
// predictive model) and model.GroundTruthOracle (measured, for
// ablation).
type Oracle interface {
	// NumJobs is the number of jobs in the batch.
	NumJobs() int

	// StandaloneTime is l_{i,p,f}: the solo execution time of job i on
	// device d at frequency level f.
	StandaloneTime(i int, d apu.Device, f int) units.Seconds

	// StandalonePower is the package power of that solo run.
	StandalonePower(i int, d apu.Device, f int) units.Watts

	// Degradation is d_{i,p,f}^{j,g}: the fractional slowdown of job i
	// on device d at level f while job j runs on the other device at
	// level g.
	Degradation(i int, dev apu.Device, f, j, g int) float64

	// CoRunPower is the package power with job i on the CPU at level f
	// and job j on the GPU at level g; a negative job index denotes an
	// idle device.
	CoRunPower(i, f, j, g int) units.Watts
}

// FreqPair is one DVFS operating point of the whole package.
type FreqPair struct {
	CPU int
	GPU int
}

// Context bundles an oracle with the machine description and the power
// cap, and memoizes the frequency-selection queries the algorithms
// issue repeatedly.
type Context struct {
	Oracle Oracle
	Cfg    *apu.Config
	// Cap is the package power cap; zero or negative means uncapped.
	Cap units.Watts

	// Domains are optional RAPL-style per-plane caps enforced on top of
	// Cap: a PP0 entry bounds the CPU cores' power, PP1 the iGPU's, and
	// a Package entry tightens Cap. Like FreqStride, set it before the
	// first query — the memo tables assume the caps are fixed. Plane
	// splits come from the Oracle when it implements model.DomainOracle
	// (the Context type-asserts for a CoRunSplit method); otherwise a
	// conservative split is derived from the standalone powers.
	Domains apu.DomainCaps

	// FreqStride coarsens the frequency traversal: only every
	// FreqStride-th level (counted down from the maximum) is examined.
	// The default 1 is the paper's exhaustive traversal; larger values
	// are the traversal-granularity ablation. Set it before the first
	// query: the memo tables assume it is fixed.
	FreqStride int

	// mu guards the memo tables; a Context may be shared by concurrent
	// planners (e.g. evaluating refinement candidates in parallel) as
	// long as the Oracle itself is safe for concurrent reads.
	mu       sync.Mutex
	pairMemo map[pairMemoKey]pairChoice
	soloMemo map[soloMemoKey]soloChoice
	msMemo   map[string]units.Seconds
}

// maxMakespanMemo bounds the predicted-makespan memo: the search
// policies evaluate many candidate schedules, and an unbounded table
// would grow with every distinct candidate ever seen. Once full, new
// schedules are evaluated but no longer stored.
const maxMakespanMemo = 1 << 16

type pairMemoKey struct{ c, g int }
type pairChoice struct {
	fp FreqPair
	dc float64 // degradation of the CPU job
	dg float64 // degradation of the GPU job
	ok bool
}

type soloMemoKey struct {
	i int
	d apu.Device
}
type soloChoice struct {
	f  int
	ok bool
}

// NewContext builds a scheduling context.
func NewContext(o Oracle, cfg *apu.Config, cap units.Watts) (*Context, error) {
	if o == nil || cfg == nil {
		return nil, fmt.Errorf("core: nil oracle or machine config")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Context{
		Oracle:     o,
		Cfg:        cfg,
		Cap:        cap,
		FreqStride: 1,
		pairMemo:   map[pairMemoKey]pairChoice{},
		soloMemo:   map[soloMemoKey]soloChoice{},
		msMemo:     map[string]units.Seconds{},
	}, nil
}

// stride returns the effective traversal stride.
func (cx *Context) stride() int {
	if cx.FreqStride < 1 {
		return 1
	}
	return cx.FreqStride
}

// freqLevels enumerates the frequency indices of device d the context
// traverses: every stride-th level counted down from the maximum, so
// the top level is always included.
func (cx *Context) freqLevels(d apu.Device) []int {
	var out []int
	for f := cx.Cfg.MaxFreqIndex(d); f >= 0; f -= cx.stride() {
		out = append(out, f)
	}
	return out
}

// Capped reports whether any power constraint is in force — the
// package cap or any configured domain cap.
func (cx *Context) Capped() bool { return cx.Cap > 0 || cx.Domains.Any() }

// packageCap returns the effective package limit: the tighter of Cap
// and the Domains' package entry (zero = uncapped).
func (cx *Context) packageCap() units.Watts {
	c := cx.Cap
	if p := cx.Domains.Package; p > 0 && (c <= 0 || p < c) {
		c = p
	}
	return c
}

// domainOracle is the per-plane extension the Context looks for on its
// Oracle; it mirrors model.DomainOracle without importing the package.
type domainOracle interface {
	CoRunSplit(i, f, j, g int) apu.PowerSplit
}

// split breaks the pair's predicted power into planes, preferring the
// oracle's own decomposition. The fallback attributes everything above
// idle to the plane of the device running it — conservative for PP0
// (the host thread lands in PP1's gross term) but exact in total.
func (cx *Context) split(i, f, j, g int) apu.PowerSplit {
	if d, ok := cx.Oracle.(domainOracle); ok {
		return d.CoRunSplit(i, f, j, g)
	}
	idle := cx.Oracle.CoRunPower(-1, 0, -1, 0)
	s := apu.PowerSplit{Uncore: idle}
	if i >= 0 {
		s.PP0 = cx.Oracle.StandalonePower(i, apu.CPU, f) - idle
	}
	if j >= 0 {
		s.PP1 = cx.Oracle.StandalonePower(j, apu.GPU, g) - idle
	}
	return s
}

// planesFit reports whether the pair's plane split respects the
// configured PP0/PP1 caps.
func (cx *Context) planesFit(i, f, j, g int) bool {
	if cx.Domains.PP0 <= 0 && cx.Domains.PP1 <= 0 {
		return true
	}
	s := cx.split(i, f, j, g)
	if cx.Domains.PP0 > 0 && s.PP0 > cx.Domains.PP0 {
		return false
	}
	if cx.Domains.PP1 > 0 && s.PP1 > cx.Domains.PP1 {
		return false
	}
	return true
}

// pairFits reports whether the co-run operating point fits every
// configured constraint: the effective package cap and the plane caps.
func (cx *Context) pairFits(c, fc, g, fg int) bool {
	if pc := cx.packageCap(); pc > 0 && cx.Oracle.CoRunPower(c, fc, g, fg) > pc {
		return false
	}
	return cx.planesFit(c, fc, g, fg)
}

// soloFits is pairFits for a solo run of job i on device d at level f.
func (cx *Context) soloFits(i int, d apu.Device, f int) bool {
	if pc := cx.packageCap(); pc > 0 && cx.Oracle.StandalonePower(i, d, f) > pc {
		return false
	}
	ci, fc, gi, fg := i, f, -1, 0
	if d == apu.GPU {
		ci, fc, gi, fg = -1, 0, i, f
	}
	return cx.planesFit(ci, fc, gi, fg)
}

// Binding reports which constraint binds first at the pair's operating
// point — the plane or package cap with the highest utilization — and
// that utilization (predicted watts over the cap). ConstraintNone when
// nothing is configured.
func (cx *Context) Binding(c, fc, g, fg int) (apu.Constraint, float64) {
	dc := cx.Domains.WithPackage(cx.Cap)
	if !dc.Any() {
		return apu.ConstraintNone, 0
	}
	return dc.Binding(cx.split(c, fc, g, fg))
}

// BestSoloFreq returns the fastest cap-feasible frequency level for
// job i running alone on device d, preferring higher levels (times are
// monotone in frequency). ok is false when no level fits the cap.
func (cx *Context) BestSoloFreq(i int, d apu.Device) (int, bool) {
	key := soloMemoKey{i, d}
	cx.mu.Lock()
	if v, ok := cx.soloMemo[key]; ok {
		cx.mu.Unlock()
		return v.f, v.ok
	}
	cx.mu.Unlock()
	choice := soloChoice{f: 0, ok: false}
	for f := cx.Cfg.MaxFreqIndex(d); f >= 0; f-- {
		if !cx.Capped() || cx.soloFits(i, d, f) {
			choice = soloChoice{f: f, ok: true}
			break
		}
	}
	cx.mu.Lock()
	cx.soloMemo[key] = choice
	cx.mu.Unlock()
	return choice.f, choice.ok
}

// BestSoloTime returns job i's fastest cap-feasible solo time on d.
func (cx *Context) BestSoloTime(i int, d apu.Device) (units.Seconds, bool) {
	f, ok := cx.BestSoloFreq(i, d)
	if !ok {
		return 0, false
	}
	return cx.Oracle.StandaloneTime(i, d, f), true
}

// BestSoloAnywhere returns job i's best solo (device, level, time)
// across both devices under the cap.
func (cx *Context) BestSoloAnywhere(i int) (apu.Device, int, units.Seconds, bool) {
	bestDev, bestF := apu.CPU, -1
	var bestT units.Seconds
	found := false
	for d := apu.CPU; d <= apu.GPU; d++ {
		t, ok := cx.BestSoloTime(i, d)
		if !ok {
			continue
		}
		if !found || t < bestT {
			f, _ := cx.BestSoloFreq(i, d)
			bestDev, bestF, bestT, found = d, f, t, true
		}
	}
	return bestDev, bestF, bestT, found
}

// ChoosePairFreqs selects the frequency pair for CPU job c co-running
// with GPU job g (either may be -1 for an idle device), maximizing the
// combined normalized progress rate subject to the power cap. The
// normalization measures each job's progress relative to its best
// cap-feasible solo configuration, so long and short jobs weigh
// equally. It returns the chosen pair, the two predicted degradations,
// and whether any cap-feasible setting exists.
//
// This is the frequency traversal of section IV-A.2: every (f, g)
// combination allowed by the cap is examined.
func (cx *Context) ChoosePairFreqs(c, g int) (FreqPair, float64, float64, bool) {
	key := pairMemoKey{c, g}
	cx.mu.Lock()
	if v, ok := cx.pairMemo[key]; ok {
		cx.mu.Unlock()
		return v.fp, v.dc, v.dg, v.ok
	}
	cx.mu.Unlock()
	choice := cx.choosePairFreqsUncached(c, g)
	cx.mu.Lock()
	cx.pairMemo[key] = choice
	cx.mu.Unlock()
	return choice.fp, choice.dc, choice.dg, choice.ok
}

func (cx *Context) choosePairFreqsUncached(c, g int) pairChoice {
	o := cx.Oracle
	// Solo cases reduce to the solo frequency choice.
	if c < 0 && g < 0 {
		return pairChoice{fp: FreqPair{0, 0}, ok: true}
	}
	if c < 0 {
		f, ok := cx.BestSoloFreq(g, apu.GPU)
		return pairChoice{fp: FreqPair{0, f}, ok: ok}
	}
	if g < 0 {
		f, ok := cx.BestSoloFreq(c, apu.CPU)
		return pairChoice{fp: FreqPair{f, 0}, ok: ok}
	}

	refC, okC := cx.BestSoloTime(c, apu.CPU)
	refG, okG := cx.BestSoloTime(g, apu.GPU)
	if !okC || !okG {
		return pairChoice{}
	}
	best := pairChoice{}
	bestScore := -1.0
	for _, fc := range cx.freqLevels(apu.CPU) {
		for _, fg := range cx.freqLevels(apu.GPU) {
			if cx.Capped() && !cx.pairFits(c, fc, g, fg) {
				continue
			}
			dc := o.Degradation(c, apu.CPU, fc, g, fg)
			dg := o.Degradation(g, apu.GPU, fg, c, fc)
			tc := float64(o.StandaloneTime(c, apu.CPU, fc)) * (1 + dc)
			tg := float64(o.StandaloneTime(g, apu.GPU, fg)) * (1 + dg)
			score := float64(refC)/tc + float64(refG)/tg
			if score > bestScore {
				bestScore = score
				best = pairChoice{fp: FreqPair{fc, fg}, dc: dc, dg: dg, ok: true}
			}
		}
	}
	return best
}

// MinPairDegradation returns the minimal combined degradation (d_c +
// d_g) over all cap-feasible frequency pairs for CPU job c beside GPU
// job g — the interference metric of step 3. ok is false when no
// feasible pair exists.
func (cx *Context) MinPairDegradation(c, g int) (float64, bool) {
	o := cx.Oracle
	best := 0.0
	found := false
	for _, fc := range cx.freqLevels(apu.CPU) {
		for _, fg := range cx.freqLevels(apu.GPU) {
			if cx.Capped() && !cx.pairFits(c, fc, g, fg) {
				continue
			}
			d := o.Degradation(c, apu.CPU, fc, g, fg) + o.Degradation(g, apu.GPU, fg, c, fc)
			if !found || d < best {
				best, found = d, true
			}
		}
	}
	return best, found
}
