package core

import (
	"testing"

	"corun/internal/apu"
	"corun/internal/units"
	"corun/internal/workload"
)

// Acceptance criterion for domain-aware planning: a PP1-only cap must
// produce different frequency decisions than an equal package cap. The
// plane cap only constrains the GPU's own draw, so the planner may keep
// the CPU at full clock; the package cap forces a trade between both.
func TestPlanDomainCapDiffersFromPackageCap(t *testing.T) {
	const capW = units.Watts(9)
	batch := workload.Batch8()

	pp1, _ := testContext(t, batch, 0)
	pp1.Domains = apu.DomainCaps{PP1: capW}
	pkg, _ := testContext(t, batch, capW)

	if !pp1.Capped() {
		t.Fatal("PP1-only context reports uncapped")
	}

	differ := false
	for c := 0; c < 8 && !differ; c++ {
		for g := 0; g < 8; g++ {
			if c == g {
				continue
			}
			fpPlane, _, _, okPlane := pp1.ChoosePairFreqs(c, g)
			fpPkg, _, _, okPkg := pkg.ChoosePairFreqs(c, g)
			if okPlane != okPkg || fpPlane != fpPkg {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Error("PP1-only cap and equal package cap chose identical frequencies for all pairs")
	}

	// Every PP1-capped choice must respect the plane cap.
	for c := 0; c < 8; c++ {
		for g := 0; g < 8; g++ {
			if c == g {
				continue
			}
			fp, _, _, ok := pp1.ChoosePairFreqs(c, g)
			if !ok {
				t.Fatalf("pair (%d,%d) infeasible under a %v PP1 cap", c, g, capW)
			}
			if s := pp1.split(c, fp.CPU, g, fp.GPU); s.PP1 > capW {
				t.Errorf("pair (%d,%d) freqs %v: PP1 %v over the %v plane cap", c, g, fp, s.PP1, capW)
			}
		}
	}
}

// Binding must name the constraint with the highest utilization at the
// chosen operating point.
func TestContextBinding(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 0)
	cx.Domains = apu.DomainCaps{PP1: 9}
	fp, _, _, ok := cx.ChoosePairFreqs(2, 0)
	if !ok {
		t.Fatal("pair infeasible")
	}
	c, util := cx.Binding(2, fp.CPU, 0, fp.GPU)
	if c != apu.ConstraintPP1 {
		t.Errorf("binding = %v, want pp1", c)
	}
	if util <= 0 || util > 1+1e-9 {
		t.Errorf("binding utilization %v outside (0,1]", util)
	}

	// No constraints configured: nothing binds.
	free, _ := testContext(t, batch, 0)
	if c, _ := free.Binding(2, 0, 0, 0); c != apu.ConstraintNone {
		t.Errorf("unconstrained binding = %v", c)
	}
}

// The solo memo must honor plane caps: a PP0 cap lowers the best solo
// CPU level but leaves the GPU side alone.
func TestBestSoloFreqPlaneCap(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 0)
	cx.Domains = apu.DomainCaps{PP0: 5}
	f, ok := cx.BestSoloFreq(2, apu.CPU)
	if !ok {
		t.Fatal("5 W PP0 cap infeasible for solo CPU run")
	}
	if f >= cx.Cfg.MaxFreqIndex(apu.CPU) {
		t.Errorf("5 W PP0 cap should force the CPU below max, got %d", f)
	}
	if s := cx.split(2, f, -1, 0); s.PP0 > 5 {
		t.Errorf("chosen level's PP0 %v violates the plane cap", s.PP0)
	}
	gf, ok := cx.BestSoloFreq(0, apu.GPU)
	if !ok || gf != cx.Cfg.MaxFreqIndex(apu.GPU) {
		t.Errorf("PP0 cap moved the GPU solo choice to %d,%v", gf, ok)
	}
}
