package core

import (
	"fmt"
	"sort"

	"corun/internal/apu"
)

// DefaultPreferenceThreshold is D of step 2: a job whose CPU and GPU
// times differ by no more than 20% is non-preferred.
const DefaultPreferenceThreshold = 0.20

// Preference labels a job's processor affinity (step 2).
type Preference int

// Preference values.
const (
	CPUPreferred Preference = iota
	GPUPreferred
	NonPreferred
)

// String implements fmt.Stringer.
func (p Preference) String() string {
	switch p {
	case CPUPreferred:
		return "CPU"
	case GPUPreferred:
		return "GPU"
	default:
		return "Non"
	}
}

// Partition is the step-1 split: S_co can benefit from co-running,
// S_seq should run alone.
type Partition struct {
	SCo  []int
	SSeq []int
}

// PartitionJobs applies the Co-Run Theorem over all partners,
// placements, and cap-feasible frequency pairs (step 1, with the
// IV-A.2 changes).
func (cx *Context) PartitionJobs() Partition {
	var p Partition
	for i := 0; i < cx.Oracle.NumJobs(); i++ {
		if cx.coRunEverBeneficial(i) {
			p.SCo = append(p.SCo, i)
		} else {
			p.SSeq = append(p.SSeq, i)
		}
	}
	return p
}

// Categorize labels each job by processor preference using its best
// cap-feasible standalone times (step 2, with the IV-A.2 change: times
// at the highest frequency the cap allows). Jobs with no feasible
// operating point on one device prefer the other; jobs feasible
// nowhere are reported in the error.
func (cx *Context) Categorize(jobs []int, threshold float64) (map[int]Preference, error) {
	if threshold <= 0 {
		threshold = DefaultPreferenceThreshold
	}
	out := make(map[int]Preference, len(jobs))
	for _, i := range jobs {
		tc, okC := cx.BestSoloTime(i, apu.CPU)
		tg, okG := cx.BestSoloTime(i, apu.GPU)
		switch {
		case !okC && !okG:
			return nil, fmt.Errorf("core: job %d has no cap-feasible operating point", i)
		case !okC:
			out[i] = GPUPreferred
		case !okG:
			out[i] = CPUPreferred
		case float64(tc) > float64(tg)*(1+threshold):
			out[i] = GPUPreferred
		case float64(tg) > float64(tc)*(1+threshold):
			out[i] = CPUPreferred
		default:
			out[i] = NonPreferred
		}
	}
	return out, nil
}

// HCSOptions tunes the heuristic.
type HCSOptions struct {
	// PreferenceThreshold is D of step 2; zero uses the default 20%.
	PreferenceThreshold float64

	// DisablePartition skips step 1 (ablation): every job joins S_co.
	DisablePartition bool

	// DisablePreference skips step 2 (ablation): every job is treated
	// as non-preferred.
	DisablePreference bool
}

// HCS runs the heuristic co-scheduling algorithm (section IV-A) and
// returns the planned schedule.
func (cx *Context) HCS(opts HCSOptions) (*Schedule, error) {
	n := cx.Oracle.NumJobs()
	if n == 0 {
		return &Schedule{Exclusive: map[int]bool{}}, nil
	}

	// Step 1: partition into co-run and sequential sets.
	var part Partition
	if opts.DisablePartition {
		for i := 0; i < n; i++ {
			part.SCo = append(part.SCo, i)
		}
	} else {
		part = cx.PartitionJobs()
	}

	// Step 2: categorize the co-run set by processor preference.
	prefs, err := cx.Categorize(part.SCo, opts.PreferenceThreshold)
	if err != nil {
		return nil, err
	}
	if opts.DisablePreference {
		for k := range prefs {
			prefs[k] = NonPreferred
		}
	}

	// Step 3: greedy planning on predicted times.
	s, err := cx.greedyPlan(part.SCo, prefs)
	if err != nil {
		return nil, err
	}

	// Sequential set: each job alone on its best device.
	seq := append([]int(nil), part.SSeq...)
	// Longer jobs first, so short exclusives fill the tail.
	sort.Slice(seq, func(a, b int) bool {
		_, _, ta, _ := cx.BestSoloAnywhere(seq[a])
		_, _, tb, _ := cx.BestSoloAnywhere(seq[b])
		return ta > tb
	})
	for _, j := range seq {
		dev, _, _, ok := cx.BestSoloAnywhere(j)
		if !ok {
			return nil, fmt.Errorf("core: job %d infeasible under cap %v", j, cx.Cap)
		}
		if dev == apu.CPU {
			s.CPUOrder = append(s.CPUOrder, j)
		} else {
			s.GPUOrder = append(s.GPUOrder, j)
		}
		s.Exclusive[j] = true
	}
	if err := s.Validate(n); err != nil {
		return nil, err
	}
	return s, nil
}

// greedyPlan is step 3: simulate the schedule on predicted times,
// always filling an idle device from its preference-ordered candidate
// sets with the least-interference job.
func (cx *Context) greedyPlan(sco []int, prefs map[int]Preference) (*Schedule, error) {
	s := &Schedule{Exclusive: map[int]bool{}}
	remaining := map[int]bool{}
	for _, j := range sco {
		remaining[j] = true
	}

	var cpuRun, gpuRun *plannedJob

	// remainingWorkOn estimates the other device's outstanding work:
	// its running job's remaining time plus the best solo times of all
	// still-unassigned jobs (which would otherwise run there).
	remainingWorkOn := func(dev apu.Device, run *plannedJob, exclude int) float64 {
		total := 0.0
		if run != nil {
			if t, ok := cx.BestSoloTime(run.idx, dev); ok {
				total += run.frac * float64(t)
			}
		}
		for j := range remaining {
			if j == exclude {
				continue
			}
			if t, ok := cx.BestSoloTime(j, dev); ok {
				total += float64(t)
			}
		}
		return total
	}

	pick := func(dev apu.Device, other *plannedJob) int {
		cand, class := cx.candidates(dev, remaining, prefs)
		if len(cand) == 0 {
			return -1
		}
		// Balance guard: stealing from the other device's preferred
		// set is only worthwhile if this device can finish the stolen
		// job before the other device would drain the rest — otherwise
		// the slow placement overhangs the makespan and the job is
		// better left for its preferred device.
		if class == otherPreference(dev) {
			// Stealing from the other device's preferred set: admit
			// only steals that finish before the other device would
			// drain the rest (the steal runs degraded, the drain
			// estimate stays optimistic), and among those prefer the
			// job with the smallest relocation penalty — the ratio of
			// its degraded time here to its time on its preferred
			// device.
			best, bestPenalty := -1, 0.0
			for _, j := range cand {
				t, ok := cx.BestSoloTime(j, dev)
				if !ok {
					continue
				}
				est := float64(t)
				if other != nil {
					c, g := j, other.idx
					if dev == apu.GPU {
						c, g = other.idx, j
					}
					if d, ok := cx.MinPairDegradation(c, g); ok {
						est *= 1 + d
					}
				}
				if est > remainingWorkOn(dev.Other(), other, j) {
					continue
				}
				tPref, ok := cx.BestSoloTime(j, dev.Other())
				if !ok || tPref <= 0 {
					continue
				}
				penalty := est / float64(tPref)
				if best < 0 || penalty < bestPenalty {
					best, bestPenalty = j, penalty
				}
			}
			return best
		}
		if other == nil {
			// No co-runner: take the longest job to keep devices busy.
			best, bestT := -1, -1.0
			for _, j := range cand {
				t, ok := cx.BestSoloTime(j, dev)
				if !ok {
					continue
				}
				if float64(t) > bestT {
					best, bestT = j, float64(t)
				}
			}
			return best
		}
		// Least combined interference against the running job.
		best, bestD := -1, 0.0
		for _, j := range cand {
			c, g := j, other.idx
			if dev == apu.GPU {
				c, g = other.idx, j
			}
			d, ok := cx.MinPairDegradation(c, g)
			if !ok {
				continue
			}
			if best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		return best
	}

	// Seed the GPU with the longest GPU-preferred job (step 3's
	// starting rule); pick() already falls back through the sets when
	// GPU-preferred is empty.
	const maxSteps = 1 << 20
	for step := 0; step < maxSteps; step++ {
		if gpuRun == nil {
			if j := pick(apu.GPU, cpuRun); j >= 0 {
				gpuRun = &plannedJob{idx: j, frac: 1}
				delete(remaining, j)
				s.GPUOrder = append(s.GPUOrder, j)
			}
		}
		if cpuRun == nil {
			if j := pick(apu.CPU, gpuRun); j >= 0 {
				cpuRun = &plannedJob{idx: j, frac: 1}
				delete(remaining, j)
				s.CPUOrder = append(s.CPUOrder, j)
			}
		}
		if cpuRun == nil && gpuRun == nil {
			if len(remaining) == 0 {
				return s, nil
			}
			return nil, fmt.Errorf("core: greedy plan stuck with %d jobs (cap infeasible?)", len(remaining))
		}

		// Advance predicted time to the earliest completion.
		ci, gi := -1, -1
		if cpuRun != nil {
			ci = cpuRun.idx
		}
		if gpuRun != nil {
			gi = gpuRun.idx
		}
		fp, dc, dg, ok := cx.ChoosePairFreqs(ci, gi)
		if !ok {
			return nil, fmt.Errorf("core: no feasible frequencies for pair (%d,%d)", ci, gi)
		}
		var cpuRate, gpuRate float64
		if cpuRun != nil {
			cpuRate = 1 / (float64(cx.Oracle.StandaloneTime(ci, apu.CPU, fp.CPU)) * (1 + dc))
		}
		if gpuRun != nil {
			gpuRate = 1 / (float64(cx.Oracle.StandaloneTime(gi, apu.GPU, fp.GPU)) * (1 + dg))
		}
		dt := 0.0
		switch {
		case cpuRun != nil && gpuRun != nil:
			dt = minPos(cpuRun.frac/cpuRate, gpuRun.frac/gpuRate)
		case cpuRun != nil:
			dt = cpuRun.frac / cpuRate
		default:
			dt = gpuRun.frac / gpuRate
		}
		if cpuRun != nil {
			cpuRun.frac -= cpuRate * dt
			if cpuRun.frac <= 1e-12 {
				cpuRun = nil
			}
		}
		if gpuRun != nil {
			gpuRun.frac -= gpuRate * dt
			if gpuRun.frac <= 1e-12 {
				gpuRun = nil
			}
		}
	}
	return nil, fmt.Errorf("core: greedy plan exceeded step limit")
}

// otherPreference names the preference class of the opposite device.
func otherPreference(dev apu.Device) Preference {
	if dev == apu.CPU {
		return GPUPreferred
	}
	return CPUPreferred
}

// candidates lists the remaining jobs in the preference order of the
// device: its preferred set first, then non-preferred, then the other
// device's preferred set (step 3's scheduling rule). It also reports
// which class the candidates came from.
func (cx *Context) candidates(dev apu.Device, remaining map[int]bool, prefs map[int]Preference) ([]int, Preference) {
	mine := CPUPreferred
	if dev == apu.GPU {
		mine = GPUPreferred
	}
	for _, want := range []Preference{mine, NonPreferred, otherPreference(dev)} {
		var out []int
		for j := range remaining {
			if prefs[j] == want {
				out = append(out, j)
			}
		}
		if len(out) > 0 {
			sort.Ints(out) // determinism
			return out, want
		}
	}
	return nil, NonPreferred
}
