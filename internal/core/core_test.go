package core

import (
	"sync"
	"testing"

	"corun/internal/apu"
	"corun/internal/memsys"
	"corun/internal/model"
	"corun/internal/profile"
	"corun/internal/units"
	"corun/internal/workload"
)

var (
	charOnce   sync.Once
	sharedChar *model.Characterization
	charErr    error
)

// testChar caches the characterization pass across tests.
func testChar(t *testing.T) *model.Characterization {
	t.Helper()
	charOnce.Do(func() {
		sharedChar, charErr = model.Characterize(model.CharacterizeOptions{
			Cfg: apu.DefaultConfig(), Mem: memsys.Default(),
		})
	})
	if charErr != nil {
		t.Fatal(charErr)
	}
	return sharedChar
}

// testContext assembles the full prediction pipeline for a batch.
func testContext(t *testing.T, batch []*workload.Instance, cap units.Watts) (*Context, ExecOptions) {
	t.Helper()
	cfg := apu.DefaultConfig()
	mem := memsys.Default()
	prof, err := profile.Collect(cfg, mem, batch)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := model.NewPredictor(testChar(t), prof)
	if err != nil {
		t.Fatal(err)
	}
	cx, err := NewContext(pred, cfg, cap)
	if err != nil {
		t.Fatal(err)
	}
	return cx, ExecOptions{Cfg: cfg, Mem: mem, Cap: cap}
}

func TestNewContextValidation(t *testing.T) {
	if _, err := NewContext(nil, apu.DefaultConfig(), 0); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestBestSoloFreq(t *testing.T) {
	cx, _ := testContext(t, workload.Batch8(), 0)
	// Uncapped: max level on both devices.
	f, ok := cx.BestSoloFreq(0, apu.CPU)
	if !ok || f != cx.Cfg.MaxFreqIndex(apu.CPU) {
		t.Errorf("uncapped solo freq = %d,%v", f, ok)
	}

	capped, _ := testContext(t, workload.Batch8(), 15)
	f, ok = capped.BestSoloFreq(0, apu.CPU)
	if !ok {
		t.Fatal("15 W infeasible for solo CPU run")
	}
	if f >= capped.Cfg.MaxFreqIndex(apu.CPU) {
		t.Errorf("15 W cap should force CPU below max, got %d", f)
	}
	if capped.Oracle.StandalonePower(0, apu.CPU, f) > 15 {
		t.Error("chosen level violates the cap")
	}
	// And the next level up must violate it (highest feasible).
	if capped.Oracle.StandalonePower(0, apu.CPU, f+1) <= 15 {
		t.Error("a higher feasible level exists")
	}
}

func TestBestSoloAnywherePreference(t *testing.T) {
	cx, _ := testContext(t, workload.Batch8(), 0)
	d, _, _, ok := cx.BestSoloAnywhere(0) // streamcluster
	if !ok || d != apu.GPU {
		t.Errorf("streamcluster best device = %v", d)
	}
	d, _, _, ok = cx.BestSoloAnywhere(2) // dwt2d
	if !ok || d != apu.CPU {
		t.Errorf("dwt2d best device = %v", d)
	}
}

func TestChoosePairFreqsUncapped(t *testing.T) {
	cx, _ := testContext(t, workload.Batch8(), 0)
	fp, dc, dg, ok := cx.ChoosePairFreqs(2, 0) // dwt2d CPU, streamcluster GPU
	if !ok {
		t.Fatal("uncapped pair infeasible")
	}
	// Uncapped, the throughput objective picks max frequencies unless
	// contention-induced degradation outweighs the clock gain; both
	// should be near the top of their ranges.
	if fp.CPU < cx.Cfg.MaxFreqIndex(apu.CPU)-3 || fp.GPU < cx.Cfg.MaxFreqIndex(apu.GPU)-3 {
		t.Errorf("uncapped choice %v unexpectedly low", fp)
	}
	if dc < 0 || dg < 0 {
		t.Error("negative degradations")
	}
}

func TestChoosePairFreqsRespectsCap(t *testing.T) {
	cx, _ := testContext(t, workload.Batch8(), 15)
	for c := 0; c < 8; c++ {
		for g := 0; g < 8; g++ {
			if c == g {
				continue
			}
			fp, _, _, ok := cx.ChoosePairFreqs(c, g)
			if !ok {
				t.Fatalf("pair (%d,%d) infeasible under 15 W", c, g)
			}
			if p := cx.Oracle.CoRunPower(c, fp.CPU, g, fp.GPU); p > 15 {
				t.Errorf("pair (%d,%d) chosen freqs %v predicted power %v > cap", c, g, fp, p)
			}
		}
	}
}

func TestChoosePairFreqsSoloCases(t *testing.T) {
	cx, _ := testContext(t, workload.Batch8(), 15)
	fp, _, _, ok := cx.ChoosePairFreqs(-1, 3)
	if !ok {
		t.Fatal("solo GPU infeasible")
	}
	want, _ := cx.BestSoloFreq(3, apu.GPU)
	if fp.GPU != want {
		t.Errorf("solo GPU freq %d, want %d", fp.GPU, want)
	}
	fp, _, _, ok = cx.ChoosePairFreqs(2, -1)
	if !ok {
		t.Fatal("solo CPU infeasible")
	}
	want, _ = cx.BestSoloFreq(2, apu.CPU)
	if fp.CPU != want {
		t.Errorf("solo CPU freq %d, want %d", fp.CPU, want)
	}
	if _, _, _, ok = cx.ChoosePairFreqs(-1, -1); !ok {
		t.Error("all-idle pair infeasible")
	}
}

func TestMinPairDegradation(t *testing.T) {
	cx, _ := testContext(t, workload.Batch8(), 15)
	// dwt2d beside hotspot should interfere far less than beside
	// streamcluster (section III), also in the predicted tables.
	dHot, ok1 := cx.MinPairDegradation(2, 3)
	dStream, ok2 := cx.MinPairDegradation(2, 0)
	if !ok1 || !ok2 {
		t.Fatal("pairs infeasible")
	}
	if dHot >= dStream {
		t.Errorf("hotspot pairing %v should beat streamcluster pairing %v", dHot, dStream)
	}
}

func TestCategorizeMatchesPaper(t *testing.T) {
	cx, _ := testContext(t, workload.Batch8(), 0)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	prefs, err := cx.Categorize(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := workload.Names()
	for i, name := range names {
		want := GPUPreferred
		switch name {
		case "dwt2d":
			want = CPUPreferred
		case "lud":
			want = NonPreferred
		}
		if prefs[i] != want {
			t.Errorf("%s categorized %v, want %v", name, prefs[i], want)
		}
	}
}

func TestPartitionJobsMostCoRun(t *testing.T) {
	cx, _ := testContext(t, workload.Batch8(), 15)
	p := cx.PartitionJobs()
	// With complementary preferences and modest degradations, most of
	// the batch benefits from co-running.
	if len(p.SCo) < 6 {
		t.Errorf("only %d jobs in S_co; expected most of the batch", len(p.SCo))
	}
	if len(p.SCo)+len(p.SSeq) != 8 {
		t.Error("partition does not cover the batch")
	}
}

func TestPreferenceString(t *testing.T) {
	if CPUPreferred.String() != "CPU" || GPUPreferred.String() != "GPU" || NonPreferred.String() != "Non" {
		t.Error("preference names wrong")
	}
}

func TestScheduleValidate(t *testing.T) {
	s := &Schedule{CPUOrder: []int{0, 1}, GPUOrder: []int{2}, Exclusive: map[int]bool{}}
	if err := s.Validate(3); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := s.Validate(4); err == nil {
		t.Error("missing job accepted")
	}
	dup := &Schedule{CPUOrder: []int{0, 0}, GPUOrder: []int{1}, Exclusive: map[int]bool{}}
	if err := dup.Validate(2); err == nil {
		t.Error("duplicate job accepted")
	}
	oob := &Schedule{CPUOrder: []int{5}, Exclusive: map[int]bool{}}
	if err := oob.Validate(2); err == nil {
		t.Error("out-of-range job accepted")
	}
}

func TestScheduleCloneIndependent(t *testing.T) {
	s := &Schedule{CPUOrder: []int{0}, GPUOrder: []int{1}, Exclusive: map[int]bool{1: true}}
	c := s.Clone()
	c.CPUOrder[0] = 9
	c.Exclusive[0] = true
	if s.CPUOrder[0] == 9 || s.Exclusive[0] {
		t.Error("Clone shares state")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}
