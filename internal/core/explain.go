package core

import (
	"fmt"
	"io"

	"corun/internal/apu"
)

// ExplainPlan writes a human-readable account of why a schedule looks
// the way it does: each job's preference label and cap-feasible solo
// times, the queue placements, and the frequency pair the runtime will
// choose for each adjacent pairing in the plan. It is a debugging and
// teaching aid for the CLI, not part of the algorithm.
func (cx *Context) ExplainPlan(w io.Writer, s *Schedule, labels []string) error {
	n := cx.Oracle.NumJobs()
	if err := s.Validate(n); err != nil {
		return err
	}
	name := func(i int) string {
		if i >= 0 && i < len(labels) && labels[i] != "" {
			return labels[i]
		}
		return fmt.Sprintf("job%d", i)
	}

	prefs, err := cx.Categorize(s.Jobs(), 0)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "power cap: %v\n\njobs:\n", capLabel(cx)); err != nil {
		return err
	}
	for _, i := range s.Jobs() {
		tc, okC := cx.BestSoloTime(i, apu.CPU)
		tg, okG := cx.BestSoloTime(i, apu.GPU)
		line := fmt.Sprintf("  %-16s pref=%-3s", name(i), prefs[i])
		if okC {
			fc, _ := cx.BestSoloFreq(i, apu.CPU)
			line += fmt.Sprintf("  cpu %6.1fs@%v", float64(tc), cx.Cfg.Freq(apu.CPU, fc))
		}
		if okG {
			fg, _ := cx.BestSoloFreq(i, apu.GPU)
			line += fmt.Sprintf("  gpu %6.1fs@%v", float64(tg), cx.Cfg.Freq(apu.GPU, fg))
		}
		if s.Exclusive[i] {
			line += "  [runs alone]"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w, "\nqueues:\n  CPU: %v\n  GPU: %v\n\npairings (frequencies the runtime will pick):\n",
		nameList(s.CPUOrder, name), nameList(s.GPUOrder, name)); err != nil {
		return err
	}
	// Replay the predicted timeline and report each dispatch with its
	// chosen frequencies.
	return cx.explainTimeline(w, s, name)
}

// explainTimeline replays the predicted schedule and prints each
// dispatch with its chosen frequencies and predicted degradations.
func (cx *Context) explainTimeline(w io.Writer, s *Schedule, name func(int) string) error {
	cpuQ := append([]int(nil), s.CPUOrder...)
	gpuQ := append([]int(nil), s.GPUOrder...)
	var cpuRun, gpuRun *plannedJob
	now := 0.0
	for steps := 0; steps < 1<<16; steps++ {
		if cpuRun == nil && len(cpuQ) > 0 && cx.mayDispatch(s, cpuQ[0], gpuRun) {
			cpuRun = &plannedJob{idx: cpuQ[0], frac: 1}
			cpuQ = cpuQ[1:]
			if err := cx.explainDispatch(w, now, apu.CPU, cpuRun, gpuRun, name); err != nil {
				return err
			}
		}
		if gpuRun == nil && len(gpuQ) > 0 && cx.mayDispatch(s, gpuQ[0], cpuRun) {
			gpuRun = &plannedJob{idx: gpuQ[0], frac: 1}
			gpuQ = gpuQ[1:]
			if err := cx.explainDispatch(w, now, apu.GPU, gpuRun, cpuRun, name); err != nil {
				return err
			}
		}
		if cpuRun == nil && gpuRun == nil {
			return nil
		}
		ci, gi := -1, -1
		if cpuRun != nil {
			ci = cpuRun.idx
		}
		if gpuRun != nil {
			gi = gpuRun.idx
		}
		fp, dc, dg, ok := cx.ChoosePairFreqs(ci, gi)
		if !ok {
			return fmt.Errorf("core: infeasible pairing (%d,%d)", ci, gi)
		}
		var cpuRate, gpuRate float64
		if cpuRun != nil {
			cpuRate = 1 / (float64(cx.Oracle.StandaloneTime(ci, apu.CPU, fp.CPU)) * (1 + dc))
		}
		if gpuRun != nil {
			gpuRate = 1 / (float64(cx.Oracle.StandaloneTime(gi, apu.GPU, fp.GPU)) * (1 + dg))
		}
		dt := 0.0
		switch {
		case cpuRun != nil && gpuRun != nil:
			dt = minPos(cpuRun.frac/cpuRate, gpuRun.frac/gpuRate)
		case cpuRun != nil:
			dt = cpuRun.frac / cpuRate
		default:
			dt = gpuRun.frac / gpuRate
		}
		now += dt
		if cpuRun != nil {
			cpuRun.frac -= cpuRate * dt
			if cpuRun.frac <= 1e-12 {
				cpuRun = nil
			}
		}
		if gpuRun != nil {
			gpuRun.frac -= gpuRate * dt
			if gpuRun.frac <= 1e-12 {
				gpuRun = nil
			}
		}
	}
	return fmt.Errorf("core: explanation exceeded step limit")
}

func (cx *Context) explainDispatch(w io.Writer, now float64, dev apu.Device, run, other *plannedJob, name func(int) string) error {
	ci, gi := -1, -1
	if dev == apu.CPU {
		ci = run.idx
		if other != nil {
			gi = other.idx
		}
	} else {
		gi = run.idx
		if other != nil {
			ci = other.idx
		}
	}
	fp, dc, dg, ok := cx.ChoosePairFreqs(ci, gi)
	if !ok {
		return fmt.Errorf("core: infeasible pairing (%d,%d)", ci, gi)
	}
	beside := "idle"
	if other != nil {
		beside = name(other.idx)
	}
	deg := dc
	if dev == apu.GPU {
		deg = dg
	}
	_, err := fmt.Fprintf(w, "  t=%7.1fs  %v <- %-16s beside %-16s freqs %v/%v  predicted degradation %.0f%%\n",
		now, dev, name(run.idx), beside,
		cx.Cfg.Freq(apu.CPU, fp.CPU), cx.Cfg.Freq(apu.GPU, fp.GPU), 100*deg)
	return err
}

func nameList(idx []int, name func(int) string) []string {
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = name(j)
	}
	return out
}

func capLabel(cx *Context) string {
	if !cx.Capped() {
		return "none"
	}
	return fmt.Sprintf("%.1f W", float64(cx.Cap))
}
