package core

import (
	"fmt"

	"corun/internal/units"
)

// MaxOptimalJobs bounds the exhaustive optimal search; the schedule
// space is sum_k C(n,k)*k!*(n-k)! = (n+1)! configurations, so eight
// jobs already cost ~360k evaluations.
const MaxOptimalJobs = 8

// OptimalSchedule exhaustively searches every (CPU order, GPU order)
// partition of the batch and returns the schedule with the smallest
// predicted makespan, along with that makespan.
//
// The search optimizes the same predicted objective the heuristics use
// (frequencies per pairing via ChoosePairFreqs, side-note overlap
// arithmetic), so the gap between HCS+ and this optimum isolates the
// heuristic's scheduling loss from model error. The co-scheduling
// problem is NP-hard (section IV), which is exactly why this is only
// feasible for small batches — it exists to validate the heuristics
// and the lower bound, not to replace them.
func (cx *Context) OptimalSchedule() (*Schedule, units.Seconds, error) {
	n := cx.Oracle.NumJobs()
	if n == 0 {
		return &Schedule{Exclusive: map[int]bool{}}, 0, nil
	}
	if n > MaxOptimalJobs {
		return nil, 0, fmt.Errorf("core: optimal search supports at most %d jobs, got %d", MaxOptimalJobs, n)
	}

	var best *Schedule
	bestT := units.Seconds(0)
	found := false

	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}

	// Enumerate subsets for the CPU side, then permutations of both
	// sides.
	for mask := 0; mask < 1<<n; mask++ {
		var cpu, gpu []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cpu = append(cpu, jobs[i])
			} else {
				gpu = append(gpu, jobs[i])
			}
		}
		forEachPermutation(cpu, func(cp []int) {
			forEachPermutation(gpu, func(gp []int) {
				s := &Schedule{
					CPUOrder:  append([]int(nil), cp...),
					GPUOrder:  append([]int(nil), gp...),
					Exclusive: map[int]bool{},
				}
				t, err := cx.PredictedMakespan(s)
				if err != nil {
					return
				}
				if !found || t < bestT {
					best, bestT, found = s, t, true
				}
			})
		})
	}
	if !found {
		return nil, 0, fmt.Errorf("core: no feasible schedule under cap %v", cx.Cap)
	}
	return best, bestT, nil
}

// forEachPermutation calls f with every permutation of xs (Heap's
// algorithm; the slice passed to f is reused between calls).
func forEachPermutation(xs []int, f func([]int)) {
	if len(xs) == 0 {
		f(nil)
		return
	}
	perm := append([]int(nil), xs...)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			f(perm)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	rec(len(perm))
}
