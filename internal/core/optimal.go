package core

import (
	"fmt"
	"runtime"
	"sync"

	"corun/internal/units"
)

// MaxOptimalJobs bounds the exhaustive optimal search; the schedule
// space is sum_k C(n,k)*k!*(n-k)! = (n+1)! configurations, so eight
// jobs already cost ~360k evaluations.
const MaxOptimalJobs = 8

// OptimalOptions configures the exhaustive optimal search.
type OptimalOptions struct {
	// Workers bounds the worker pool that fans the per-partition
	// permutation searches out across cores; zero picks a machine-sized
	// default, one forces the serial search.
	Workers int
}

// boundedWorkers resolves a requested worker count against the machine
// and the task count: zero means one worker per core, and the pool is
// never larger than the number of tasks.
func boundedWorkers(requested, tasks int) int {
	w := requested
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// OptimalSchedule exhaustively searches every (CPU order, GPU order)
// partition of the batch and returns the schedule with the smallest
// predicted makespan, along with that makespan.
//
// The search optimizes the same predicted objective the heuristics use
// (frequencies per pairing via ChoosePairFreqs, side-note overlap
// arithmetic), so the gap between HCS+ and this optimum isolates the
// heuristic's scheduling loss from model error. The co-scheduling
// problem is NP-hard (section IV), which is exactly why this is only
// feasible for small batches — it exists to validate the heuristics
// and the lower bound, not to replace them.
func (cx *Context) OptimalSchedule() (*Schedule, units.Seconds, error) {
	return cx.OptimalScheduleOpts(OptimalOptions{})
}

// OptimalScheduleOpts is OptimalSchedule with an explicit worker pool:
// each CPU-side subset of the batch is an independent permutation
// search, so the 2^n subsets fan out across the pool. Results are
// merged in subset order with a strict less-than comparison, so the
// returned schedule is bit-for-bit identical for every worker count,
// including the serial search.
func (cx *Context) OptimalScheduleOpts(opts OptimalOptions) (*Schedule, units.Seconds, error) {
	n := cx.Oracle.NumJobs()
	if n == 0 {
		return &Schedule{Exclusive: map[int]bool{}}, 0, nil
	}
	if n > MaxOptimalJobs {
		return nil, 0, fmt.Errorf("core: optimal search supports at most %d jobs, got %d", MaxOptimalJobs, n)
	}

	jobs := make([]int, n)
	for i := range jobs {
		jobs[i] = i
	}

	type maskResult struct {
		best  *Schedule
		bestT units.Seconds
		found bool
	}
	results := make([]maskResult, 1<<n)
	workers := boundedWorkers(opts.Workers, len(results))
	masks := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for mask := range masks {
				best, bestT, found := cx.searchMask(jobs, mask)
				results[mask] = maskResult{best, bestT, found}
			}
		}()
	}
	for mask := range results {
		masks <- mask
	}
	close(masks)
	wg.Wait()

	var best *Schedule
	bestT := units.Seconds(0)
	found := false
	for _, r := range results {
		if r.found && (!found || r.bestT < bestT) {
			best, bestT, found = r.best, r.bestT, true
		}
	}
	if !found {
		return nil, 0, fmt.Errorf("core: no feasible schedule under cap %v", cx.Cap)
	}
	return best, bestT, nil
}

// searchMask runs the permutation search of one CPU-side subset: jobs
// whose bit is set in mask go to the CPU queue, the rest to the GPU
// queue, and both sides are permuted exhaustively.
func (cx *Context) searchMask(jobs []int, mask int) (best *Schedule, bestT units.Seconds, found bool) {
	var cpu, gpu []int
	for i := range jobs {
		if mask&(1<<i) != 0 {
			cpu = append(cpu, jobs[i])
		} else {
			gpu = append(gpu, jobs[i])
		}
	}
	forEachPermutation(cpu, func(cp []int) {
		forEachPermutation(gpu, func(gp []int) {
			s := &Schedule{
				CPUOrder:  append([]int(nil), cp...),
				GPUOrder:  append([]int(nil), gp...),
				Exclusive: map[int]bool{},
			}
			t, err := cx.PredictedMakespan(s)
			if err != nil {
				return
			}
			if !found || t < bestT {
				best, bestT, found = s, t, true
			}
		})
	})
	return best, bestT, found
}

// forEachPermutation calls f with every permutation of xs (Heap's
// algorithm; the slice passed to f is reused between calls).
func forEachPermutation(xs []int, f func([]int)) {
	if len(xs) == 0 {
		f(nil)
		return
	}
	perm := append([]int(nil), xs...)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			f(perm)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	rec(len(perm))
}
