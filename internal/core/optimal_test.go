package core

import (
	"testing"

	"corun/internal/units"
	"corun/internal/workload"
)

func TestOptimalEmptyAndOversized(t *testing.T) {
	cx, _ := testContext(t, nil, 0)
	s, m, err := cx.OptimalSchedule()
	if err != nil || m != 0 || len(s.Jobs()) != 0 {
		t.Errorf("empty optimal: %v %v %v", s, m, err)
	}
	big, _ := testContext(t, workload.Batch16(), 15)
	if _, _, err := big.OptimalSchedule(); err == nil {
		t.Error("oversized batch accepted")
	}
}

// The exhaustive optimum is never worse than HCS+ on the predicted
// metric, and the lower bound sits at or below it.
func TestOptimalDominatesHeuristics(t *testing.T) {
	batch, err := workload.Subset("streamcluster", "cfd", "dwt2d", "hotspot", "lud")
	if err != nil {
		t.Fatal(err)
	}
	cx, opts := testContext(t, batch, 15)

	opt, optT, err := cx.OptimalSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(len(batch)); err != nil {
		t.Fatal(err)
	}

	plus, plusT, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if optT > plusT+1e-9 {
		t.Errorf("optimal predicted %v worse than HCS+ %v", optT, plusT)
	}
	// The heuristic should be close to optimal on small batches (the
	// paper's premise that the greedy finds good schedules).
	if float64(plusT) > float64(optT)*1.25 {
		t.Errorf("HCS+ predicted %v more than 25%% above optimal %v", plusT, optT)
	}

	bound, err := cx.LowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if float64(bound) > float64(optT)*1.001 {
		t.Errorf("lower bound %v above the predicted optimum %v", bound, optT)
	}

	// The optimal schedule also executes well.
	res, err := cx.Execute(opt, batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || len(res.Completions) != len(batch) {
		t.Errorf("optimal execution broken: %v, %d completions", res.Makespan, len(res.Completions))
	}
	_ = plus
}

func TestForEachPermutation(t *testing.T) {
	var count int
	seen := map[[3]int]bool{}
	forEachPermutation([]int{1, 2, 3}, func(p []int) {
		count++
		seen[[3]int{p[0], p[1], p[2]}] = true
	})
	if count != 6 || len(seen) != 6 {
		t.Errorf("3-element permutations: %d calls, %d distinct", count, len(seen))
	}
	calls := 0
	forEachPermutation(nil, func(p []int) { calls++ })
	if calls != 1 {
		t.Errorf("empty permutation visited %d times, want 1", calls)
	}
}

// Exhaustive cross-check on a tiny batch: HCS+ lands within a small
// factor of the enumerated optimum for several caps.
func TestHeuristicNearOptimalAcrossCaps(t *testing.T) {
	batch, err := workload.Subset("dwt2d", "srad", "hotspot", "lud")
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []float64{0, 14, 16, 20} {
		cx, _ := testContext(t, batch, units.Watts(cap))
		_, optT, err := cx.OptimalSchedule()
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		_, plusT, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: 7})
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		if float64(plusT) > float64(optT)*1.30 {
			t.Errorf("cap %v: HCS+ %v vs optimal %v (>30%% gap)", cap, plusT, optT)
		}
	}
}
