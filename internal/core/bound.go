package core

import (
	"fmt"

	"corun/internal/apu"
	"corun/internal/units"
)

// LowerBound computes the paper's lower bound on the optimal makespan
// (section IV-B):
//
//	T_low = 1/2 * sum_i l'_i
//
// where for each processor p
//
//	l'_{i,p} = min co-run time of i on p with its least-interfering
//	           partner under the cap, if that beats 2x its best solo
//	           time; otherwise 2x its best solo time,
//
// and l'_i = min_p l'_{i,p}. The soundness follows from the Co-Run
// Theorem: a job either overlaps a partner (occupying "half" the
// machine for its co-run length) or runs alone (occupying the whole
// machine, hence the factor two before halving).
func (cx *Context) LowerBound() (units.Seconds, error) {
	n := cx.Oracle.NumJobs()
	total := 0.0
	for i := 0; i < n; i++ {
		li, err := cx.boundTerm(i)
		if err != nil {
			return 0, err
		}
		total += float64(li)
	}
	return units.Seconds(total / 2), nil
}

// boundTerm computes l'_i.
func (cx *Context) boundTerm(i int) (units.Seconds, error) {
	best := -1.0
	for d := apu.CPU; d <= apu.GPU; d++ {
		v, ok := cx.boundTermOn(i, d)
		if !ok {
			continue
		}
		if best < 0 || float64(v) < best {
			best = float64(v)
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("core: job %d infeasible under cap %v", i, cx.Cap)
	}
	return units.Seconds(best), nil
}

// boundTermOn computes l'_{i,p} for one processor.
func (cx *Context) boundTermOn(i int, d apu.Device) (units.Seconds, bool) {
	o := cx.Oracle
	solo, okSolo := cx.BestSoloTime(i, d)
	minCoRun := -1.0
	for j := 0; j < o.NumJobs(); j++ {
		if j == i {
			continue
		}
		for _, f := range cx.freqLevels(d) {
			for _, g := range cx.freqLevels(d.Other()) {
				if cx.Capped() {
					var p units.Watts
					if d == apu.CPU {
						p = o.CoRunPower(i, f, j, g)
					} else {
						p = o.CoRunPower(j, g, i, f)
					}
					if p > cx.Cap {
						continue
					}
				}
				t := float64(o.StandaloneTime(i, d, f)) * (1 + o.Degradation(i, d, f, j, g))
				if minCoRun < 0 || t < minCoRun {
					minCoRun = t
				}
			}
		}
	}
	switch {
	case !okSolo && minCoRun < 0:
		return 0, false
	case !okSolo:
		return units.Seconds(minCoRun), true
	case minCoRun < 0:
		return 2 * solo, true
	case minCoRun < 2*float64(solo):
		return units.Seconds(minCoRun), true
	default:
		return 2 * solo, true
	}
}

// MinCoRunTime reports the best co-run time of job i on device d with
// its least-interfering partner under the cap — the "min. co-run time"
// rows of Table I. ok is false if no cap-feasible co-run exists.
func (cx *Context) MinCoRunTime(i int, d apu.Device) (units.Seconds, bool) {
	o := cx.Oracle
	best := -1.0
	for j := 0; j < o.NumJobs(); j++ {
		if j == i {
			continue
		}
		for _, f := range cx.freqLevels(d) {
			for _, g := range cx.freqLevels(d.Other()) {
				if cx.Capped() {
					var p units.Watts
					if d == apu.CPU {
						p = o.CoRunPower(i, f, j, g)
					} else {
						p = o.CoRunPower(j, g, i, f)
					}
					if p > cx.Cap {
						continue
					}
				}
				t := float64(o.StandaloneTime(i, d, f)) * (1 + o.Degradation(i, d, f, j, g))
				if best < 0 || t < best {
					best = t
				}
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return units.Seconds(best), true
}
