package core

import (
	"math/rand"
	"testing"

	"corun/internal/workload"
)

// Annealing never returns a schedule worse than its input on the
// predicted metric.
func TestAnnealNeverWorsens(t *testing.T) {
	batch := workload.Batch16()
	cx, _ := testContext(t, batch, 15)
	s, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := cx.PredictedMakespan(s)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		out, got, err := cx.Anneal(s, AnnealOptions{Iterations: 400, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if got > base+1e-9 {
			t.Errorf("seed %d: anneal worsened %v -> %v", seed, base, got)
		}
		if err := out.Validate(len(batch)); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// Annealing from a random starting point approaches the refined HCS+
// quality: the cheap refinement leaves little on the table.
func TestAnnealVsRefine(t *testing.T) {
	batch := workload.Batch16()
	cx, _ := testContext(t, batch, 15)
	hcs, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, refinedT, err := cx.Refine(hcs, RefineOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, annealT, err := cx.Anneal(hcs, AnnealOptions{Iterations: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The heavy search may beat the cheap one, but not by a lot — the
	// paper's linear refinement must remain competitive.
	if float64(refinedT) > float64(annealT)*1.15 {
		t.Errorf("refinement (%v) trails annealing (%v) by >15%%", refinedT, annealT)
	}
}

func TestGeneticProducesValidCompetitiveSchedules(t *testing.T) {
	batch := workload.Batch16()
	cx, _ := testContext(t, batch, 15)
	hcs, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hcsT, err := cx.PredictedMakespan(hcs)
	if err != nil {
		t.Fatal(err)
	}
	s, got, err := cx.Genetic(GeneticOptions{Seed: 3, SeedSchedule: hcs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(len(batch)); err != nil {
		t.Fatal(err)
	}
	// Seeded with HCS and elitist, the GA cannot end worse than HCS.
	if got > hcsT+1e-9 {
		t.Errorf("GA (%v) worse than its seed (%v)", got, hcsT)
	}
}

func TestGeneticWithoutSeedSchedule(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 15)
	s, got, err := cx.Genetic(GeneticOptions{Seed: 1, Population: 12, Generations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(len(batch)); err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Error("non-positive predicted makespan")
	}
}

func TestGeneticEmptyBatch(t *testing.T) {
	cx, _ := testContext(t, nil, 0)
	s, got, err := cx.Genetic(GeneticOptions{Seed: 1})
	if err != nil || got != 0 || len(s.Jobs()) != 0 {
		t.Errorf("empty GA: %v %v %v", s, got, err)
	}
}

// Determinism: same seed, same result.
func TestMetaheuristicsDeterministic(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 15)
	hcs, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, a1, err := cx.Anneal(hcs, AnnealOptions{Iterations: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, a2, err := cx.Anneal(hcs, AnnealOptions{Iterations: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Errorf("anneal not deterministic: %v vs %v", a1, a2)
	}
	_, g1, err := cx.Genetic(GeneticOptions{Seed: 9, Population: 10, Generations: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, g2, err := cx.Genetic(GeneticOptions{Seed: 9, Population: 10, Generations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Errorf("GA not deterministic: %v vs %v", g1, g2)
	}
}

// Mutations preserve the job multiset.
func TestMutateSchedulePreservesJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := &Schedule{CPUOrder: []int{0, 1, 2}, GPUOrder: []int{3, 4}, Exclusive: map[int]bool{}}
	for k := 0; k < 200; k++ {
		mutateSchedule(s, rng)
		if err := s.Validate(5); err != nil {
			t.Fatalf("after %d mutations: %v (%v)", k+1, err, s)
		}
	}
}

// Crossover children cover each job exactly once.
func TestCrossoverValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSchedule(10, rng)
	b := randomSchedule(10, rng)
	for k := 0; k < 50; k++ {
		child := crossover(a, b, 10, rng)
		if err := child.Validate(10); err != nil {
			t.Fatalf("crossover %d: %v", k, err)
		}
	}
}
