package core

import (
	"sync"
	"testing"

	"corun/internal/workload"
)

// A single Context may be queried by concurrent planners; run with
// -race to verify the memo tables are safe.
func TestContextConcurrentUse(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 15)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for c := 0; c < len(batch); c++ {
				for gjob := 0; gjob < len(batch); gjob++ {
					if c == gjob {
						continue
					}
					if _, _, _, ok := cx.ChoosePairFreqs(c, gjob); !ok {
						t.Errorf("pair (%d,%d) infeasible", c, gjob)
						return
					}
					if _, ok := cx.BestSoloFreq(c, 0); !ok {
						t.Errorf("solo %d infeasible", c)
						return
					}
				}
			}
			// Each goroutine also plans a full schedule.
			if _, _, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: seed}); err != nil {
				t.Error(err)
			}
		}(int64(g))
	}
	wg.Wait()
}

// Concurrent queries return identical values to sequential ones (the
// memo never returns partially written entries).
func TestContextConcurrentDeterminism(t *testing.T) {
	batch := workload.Batch8()
	seq, _ := testContext(t, batch, 15)
	par, _ := testContext(t, batch, 15)

	type ans struct {
		fp     FreqPair
		dc, dg float64
	}
	want := map[[2]int]ans{}
	for c := 0; c < len(batch); c++ {
		for g := 0; g < len(batch); g++ {
			fp, dc, dg, _ := seq.ChoosePairFreqs(c, g)
			want[[2]int{c, g}] = ans{fp, dc, dg}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < len(batch); c++ {
				for g := 0; g < len(batch); g++ {
					fp, dc, dg, _ := par.ChoosePairFreqs(c, g)
					exp := want[[2]int{c, g}]
					if fp != exp.fp || dc != exp.dc || dg != exp.dg {
						t.Errorf("pair (%d,%d): concurrent answer diverged", c, g)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
