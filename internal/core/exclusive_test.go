package core

import (
	"math"
	"testing"

	"corun/internal/apu"
	"corun/internal/units"
	"corun/internal/workload"
)

// A fully exclusive schedule serializes everything: the predicted
// makespan equals the sum of the best solo times.
func TestExclusiveScheduleSerializes(t *testing.T) {
	batch, err := workload.Subset("dwt2d", "hotspot", "lud")
	if err != nil {
		t.Fatal(err)
	}
	cx, _ := testContext(t, batch, 0)
	s := &Schedule{
		CPUOrder:  []int{0},
		GPUOrder:  []int{1, 2},
		Exclusive: map[int]bool{0: true, 1: true, 2: true},
	}
	got, err := cx.PredictedMakespan(s)
	if err != nil {
		t.Fatal(err)
	}
	want := units.Seconds(0)
	for i := range batch {
		_, _, ti, ok := cx.BestSoloAnywhere(i)
		if !ok {
			t.Fatal("infeasible")
		}
		// The schedule pins each job to a device; use that device's
		// best time.
		dev := apu.GPU
		if i == 0 {
			dev = apu.CPU
		}
		tDev, ok := cx.BestSoloTime(i, dev)
		if !ok {
			t.Fatal("infeasible on scheduled device")
		}
		want += tDev
		_ = ti
	}
	if math.Abs(float64(got-want)) > 1e-6 {
		t.Errorf("exclusive makespan %v, want serialized %v", got, want)
	}
}

// The same schedule executed on the simulator also serializes: no two
// jobs' intervals overlap.
func TestExclusiveExecutionNoOverlap(t *testing.T) {
	batch, err := workload.Subset("dwt2d", "hotspot", "lud")
	if err != nil {
		t.Fatal(err)
	}
	cx, opts := testContext(t, batch, 0)
	s := &Schedule{
		CPUOrder:  []int{0},
		GPUOrder:  []int{1, 2},
		Exclusive: map[int]bool{0: true, 1: true, 2: true},
	}
	res, err := cx.Execute(s, batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completions) != 3 {
		t.Fatalf("%d completions", len(res.Completions))
	}
	for i := range res.Completions {
		for j := i + 1; j < len(res.Completions); j++ {
			a, b := res.Completions[i], res.Completions[j]
			if a.Start < b.End-1e-9 && b.Start < a.End-1e-9 {
				t.Errorf("%s and %s overlap despite exclusivity", a.Inst.Label, b.Inst.Label)
			}
		}
	}
}

// Mixed schedules honour exclusivity selectively: the non-exclusive
// pair overlaps, the exclusive job does not overlap anything.
func TestMixedExclusiveExecution(t *testing.T) {
	batch, err := workload.Subset("dwt2d", "hotspot", "streamcluster")
	if err != nil {
		t.Fatal(err)
	}
	cx, opts := testContext(t, batch, 0)
	s := &Schedule{
		CPUOrder:  []int{0},
		GPUOrder:  []int{1, 2},
		Exclusive: map[int]bool{2: true}, // streamcluster runs alone
	}
	res, err := cx.Execute(s, batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	ends := map[string][2]units.Seconds{}
	for _, c := range res.Completions {
		ends[c.Inst.Label] = [2]units.Seconds{c.Start, c.End}
	}
	d, h, scc := ends["dwt2d"], ends["hotspot"], ends["streamcluster"]
	if !(d[0] < h[1] && h[0] < d[1]) {
		t.Error("dwt2d and hotspot should overlap")
	}
	if scc[0] < d[1]-1e-9 && d[0] < scc[1]-1e-9 {
		t.Error("streamcluster overlaps dwt2d despite exclusivity")
	}
}

// A deadlocked schedule (exclusive jobs interleaved so neither side
// can proceed) is impossible by construction here, but the evaluator
// must terminate and report sane errors for nonsense schedules.
func TestPredictedMakespanRejectsInvalid(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 15)
	bad := &Schedule{CPUOrder: []int{0, 0}, Exclusive: map[int]bool{}}
	if _, err := cx.PredictedMakespan(bad); err == nil {
		t.Error("duplicate-job schedule accepted")
	}
}
