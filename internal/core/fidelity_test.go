package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"corun/internal/units"
	"corun/internal/workload"
)

// The predicted evaluator must be a faithful proxy for execution:
// across random schedules of the same batch, predicted and executed
// makespans correlate strongly, otherwise refinement would optimize
// the wrong thing.
func TestPredictedTracksExecuted(t *testing.T) {
	batch := workload.Batch8()
	cx, opts := testContext(t, batch, 15)
	rng := rand.New(rand.NewSource(5))

	type pt struct{ pred, exec float64 }
	var pts []pt
	for k := 0; k < 12; k++ {
		s := randomSchedule(len(batch), rng)
		pred, err := cx.PredictedMakespan(s)
		if err != nil {
			continue
		}
		res, err := cx.Execute(s, batch, opts)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, pt{float64(pred), float64(res.Makespan)})
	}
	if len(pts) < 8 {
		t.Fatalf("only %d schedule samples", len(pts))
	}

	// Rank correlation (Spearman-ish): sort by predicted, check the
	// executed ranks mostly agree.
	byPred := append([]pt(nil), pts...)
	sort.Slice(byPred, func(i, j int) bool { return byPred[i].pred < byPred[j].pred })
	inversions := 0
	total := 0
	for i := 0; i < len(byPred); i++ {
		for j := i + 1; j < len(byPred); j++ {
			total++
			if byPred[i].exec > byPred[j].exec {
				inversions++
			}
		}
	}
	if frac := float64(inversions) / float64(total); frac > 0.3 {
		t.Errorf("predicted/executed rank inversions %.0f%%; evaluator is a poor proxy", 100*frac)
	}

	// Magnitudes track within a factor: predicted within [0.5, 1.6]x
	// of executed for every sample (systematic bias from the dwt2d
	// blind spot is tolerated, wild divergence is not).
	for _, p := range pts {
		r := p.exec / p.pred
		if r < 0.5 || r > 1.6 {
			t.Errorf("predicted %v vs executed %v diverge (ratio %.2f)", p.pred, p.exec, r)
		}
	}
}

// The executed makespan of the HCS+ schedule is reproducible: two
// executions of the same plan agree exactly (the simulator is
// deterministic).
func TestExecutionDeterministic(t *testing.T) {
	batch := workload.Batch8()
	cx, opts := testContext(t, batch, 15)
	plan, _, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := cx.Execute(plan, batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cx.Execute(plan, batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(a.Makespan-b.Makespan)) > 1e-12 {
		t.Errorf("same plan executed differently: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.EnergyJ != b.EnergyJ {
		t.Errorf("energy diverged: %v vs %v", a.EnergyJ, b.EnergyJ)
	}
}

// Tightening the cap can only increase the predicted optimal: bound
// and HCS+ makespans are monotone (non-increasing) in the cap.
func TestMonotoneInCap(t *testing.T) {
	batch := workload.Batch8()
	prevBound, prevPlus := math.Inf(1), math.Inf(1)
	for _, cap := range []float64{13, 15, 18, 25, 0} { // 0 = uncapped, loosest
		cx, _ := testContext(t, batch, units.Watts(cap))
		bound, err := cx.LowerBound()
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		_, plusT, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: 7})
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		if float64(bound) > prevBound+1e-9 {
			t.Errorf("bound rose when the cap loosened to %v: %v > %v", cap, bound, prevBound)
		}
		if float64(plusT) > prevPlus*1.02 {
			t.Errorf("HCS+ predicted makespan rose when the cap loosened to %v: %v > %v", cap, plusT, prevPlus)
		}
		prevBound, prevPlus = float64(bound), float64(plusT)
	}
}
