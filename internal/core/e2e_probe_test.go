package core

import (
	"testing"

	"corun/internal/sim"
	"corun/internal/workload"
)

// TestProbeFigure10 prints the full comparison; used during calibration
// and kept as a smoke test (assertions live in hcs_test.go).
func TestProbeFigure10(t *testing.T) {
	for _, n := range []int{8, 16} {
		batch := workload.Batch8()
		if n == 16 {
			batch = workload.Batch16()
		}
		cx, opts := testContext(t, batch, 15)

		randAvg, _, err := RandomAverage(opts, batch, 20, 1, sim.GPUBiased)
		if err != nil {
			t.Fatal(err)
		}
		defG, err := ExecuteDefault(opts, batch, cx.Oracle, sim.GPUBiased)
		if err != nil {
			t.Fatal(err)
		}
		defC, err := ExecuteDefault(opts, batch, cx.Oracle, sim.CPUBiased)
		if err != nil {
			t.Fatal(err)
		}
		hcs, err := cx.HCS(HCSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		hcsRes, err := cx.Execute(hcs, batch, opts)
		if err != nil {
			t.Fatal(err)
		}
		hcsPlus, _, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		hcsPlusRes, err := cx.Execute(hcsPlus, batch, opts)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := cx.LowerBound()
		if err != nil {
			t.Fatal(err)
		}
		r := float64(randAvg)
		t.Logf("n=%d: Random=%.1f Default_G=%.1f (%.0f%%) Default_C=%.1f (%.0f%%) HCS=%.1f (%.0f%%) HCS+=%.1f (%.0f%%) Bound=%.1f (%.0f%%)",
			n, r,
			defG.Makespan, 100*(r/float64(defG.Makespan)-1),
			defC.Makespan, 100*(r/float64(defC.Makespan)-1),
			hcsRes.Makespan, 100*(r/float64(hcsRes.Makespan)-1),
			hcsPlusRes.Makespan, 100*(r/float64(hcsPlusRes.Makespan)-1),
			bound, 100*(r/float64(bound)-1))
		t.Logf("n=%d: HCS schedule: %v", n, hcs)
		t.Logf("n=%d: HCS cap violations: %d (max excess %.2f W)", n, hcsRes.CapViolations, float64(hcsRes.MaxExcess))
	}
}
