package core

import (
	"math"
	"testing"

	"corun/internal/units"
)

// FuzzPairTimes checks the side-note overlap arithmetic over arbitrary
// lengths and degradations.
func FuzzPairTimes(f *testing.F) {
	f.Add(10.0, 5.0, 0.2, 0.1)
	f.Add(24.37, 23.72, 0.81, 0.05)
	f.Add(1.0, 100.0, 0.0, 1.5)
	f.Fuzz(func(t *testing.T, l1, l2, d1, d2 float64) {
		if math.IsNaN(l1) || math.IsNaN(l2) || math.IsNaN(d1) || math.IsNaN(d2) {
			t.Skip()
		}
		if l1 <= 0 || l2 <= 0 || l1 > 1e6 || l2 > 1e6 || d1 < 0 || d2 < 0 || d1 > 10 || d2 > 10 {
			t.Skip()
		}
		t1, t2 := PairTimes(units.Seconds(l1), units.Seconds(l2), d1, d2)
		// Finish times bounded by the degradation extremes.
		if float64(t1) < l1-1e-6 || float64(t2) < l2-1e-6 {
			t.Fatalf("finish before standalone: (%v,%v) for l=(%v,%v) d=(%v,%v)", t1, t2, l1, l2, d1, d2)
		}
		if float64(t1) > l1*(1+d1)+1e-6 || float64(t2) > l2*(1+d2)+1e-6 {
			t.Fatalf("finish after fully degraded: (%v,%v) for l=(%v,%v) d=(%v,%v)", t1, t2, l1, l2, d1, d2)
		}
		// Side note never exceeds the naive makespan, and the theorem
		// matches the naive comparison.
		ms := PairMakespan(units.Seconds(l1), units.Seconds(l2), d1, d2)
		naive := NaivePairMakespan(units.Seconds(l1), units.Seconds(l2), d1, d2)
		if ms > naive+1e-6 {
			t.Fatalf("side-note makespan %v above naive %v", ms, naive)
		}
		seq := l1 + l2
		if math.Abs(float64(naive)-seq) > 1e-9 {
			want := float64(naive) < seq
			if got := CoRunBeneficial(units.Seconds(l1), units.Seconds(l2), d1, d2); got != want {
				t.Fatalf("theorem %v disagrees with naive comparison (naive %v, seq %v)", got, naive, seq)
			}
		}
	})
}
