package core

import (
	"strings"
	"testing"
	"time"

	"corun/internal/apu"
	"corun/internal/sim"
	"corun/internal/units"
	"corun/internal/workload"
)

func TestHCSEmptyBatch(t *testing.T) {
	cx, _ := testContext(t, nil, 0)
	s, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Jobs()) != 0 {
		t.Error("empty batch produced a non-empty schedule")
	}
}

func TestHCSScheduleValid(t *testing.T) {
	for _, cap := range []units.Watts{0, 15, 16} {
		batch := workload.Batch8()
		cx, _ := testContext(t, batch, cap)
		s, err := cx.HCS(HCSOptions{})
		if err != nil {
			t.Fatalf("cap %v: %v", cap, err)
		}
		if err := s.Validate(len(batch)); err != nil {
			t.Errorf("cap %v: %v", cap, err)
		}
	}
}

// dwt2d (the only CPU-preferred program, index 2) must land on the CPU.
func TestHCSRespectsStrongPreference(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 15)
	s, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	onCPU := false
	for _, j := range s.CPUOrder {
		if j == 2 {
			onCPU = true
		}
	}
	if !onCPU && !s.Exclusive[2] {
		t.Errorf("dwt2d not scheduled on the CPU: %v", s)
	}
}

func TestHCSInfeasibleCap(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 1) // below idle power
	if _, err := cx.HCS(HCSOptions{}); err == nil {
		t.Error("1 W cap should be infeasible")
	}
}

// The refinement never worsens the predicted makespan, across seeds.
func TestRefineNeverWorsens(t *testing.T) {
	batch := workload.Batch16()
	cx, _ := testContext(t, batch, 15)
	s, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := cx.PredictedMakespan(s)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		ref, predicted, err := cx.Refine(s, RefineOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if predicted > base+1e-9 {
			t.Errorf("seed %d: refinement worsened predicted makespan %v -> %v", seed, base, predicted)
		}
		if err := ref.Validate(len(batch)); err != nil {
			t.Errorf("seed %d: refined schedule invalid: %v", seed, err)
		}
	}
}

// Figure 10 reproduction (8 programs, 15 W): HCS and HCS+ beat both
// Default variants and Random; Default_G beats Default_C; ordering as
// in the paper.
func TestFigure10Ordering(t *testing.T) {
	batch := workload.Batch8()
	cx, opts := testContext(t, batch, 15)

	randAvg, _, err := RandomAverage(opts, batch, 10, 1, sim.GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	defG, err := ExecuteDefault(opts, batch, cx.Oracle, sim.GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	defC, err := ExecuteDefault(opts, batch, cx.Oracle, sim.CPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	hcsPlus, _, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cx.Execute(hcsPlus, batch, opts)
	if err != nil {
		t.Fatal(err)
	}

	if res.Makespan >= defG.Makespan {
		t.Errorf("HCS+ (%v) should beat Default_G (%v)", res.Makespan, defG.Makespan)
	}
	if defG.Makespan > defC.Makespan {
		t.Errorf("Default_G (%v) should not lose to Default_C (%v)", defG.Makespan, defC.Makespan)
	}
	if float64(res.Makespan) > float64(randAvg)*0.85 {
		t.Errorf("HCS+ (%v) should improve on Random (%v) by well over 15%%", res.Makespan, randAvg)
	}
	// The power cap must hold during HCS+ execution (small reactive
	// excursions tolerated, as in Figure 9).
	if res.MaxExcess > 2 {
		t.Errorf("HCS+ exceeded the cap by %v; paper tolerates < 2 W", res.MaxExcess)
	}
}

// Figure 11 reproduction (16 programs, 15 W): the Default schedules
// fall below Random because of CPU multiprogramming, while HCS+ gains
// substantially over everything.
func TestFigure11Ordering(t *testing.T) {
	batch := workload.Batch16()
	cx, opts := testContext(t, batch, 15)

	randAvg, _, err := RandomAverage(opts, batch, 10, 1, sim.GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	defG, err := ExecuteDefault(opts, batch, cx.Oracle, sim.GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	hcs, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hcsRes, err := cx.Execute(hcs, batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	hcsPlus, _, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plusRes, err := cx.Execute(hcsPlus, batch, opts)
	if err != nil {
		t.Fatal(err)
	}

	if float64(defG.Makespan) < float64(randAvg) {
		t.Errorf("Default_G (%v) should fall below Random (%v) at 16 programs", defG.Makespan, randAvg)
	}
	if float64(hcsRes.Makespan) > float64(randAvg)*0.85 {
		t.Errorf("HCS (%v) should clearly beat Random (%v)", hcsRes.Makespan, randAvg)
	}
	if float64(plusRes.Makespan) > float64(randAvg)*0.75 {
		t.Errorf("HCS+ (%v) should beat Random (%v) by well over 25%%", plusRes.Makespan, randAvg)
	}
	if float64(plusRes.Makespan) > float64(defG.Makespan)/1.40 {
		t.Errorf("HCS+ (%v) should beat Default_G (%v) by ~46%%", plusRes.Makespan, defG.Makespan)
	}
}

// The lower bound sits below every achievable makespan.
func TestLowerBoundBelowAll(t *testing.T) {
	batch := workload.Batch8()
	cx, opts := testContext(t, batch, 15)
	bound, err := cx.LowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Fatal("non-positive bound")
	}
	hcsPlus, _, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cx.Execute(hcsPlus, batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if float64(bound) > float64(res.Makespan) {
		t.Errorf("bound %v exceeds an achieved makespan %v", bound, res.Makespan)
	}
	rnd, _, err := RandomAverage(opts, batch, 5, 3, sim.GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	if float64(bound) > float64(rnd) {
		t.Errorf("bound %v exceeds the random average %v", bound, rnd)
	}
}

// MinCoRunTime (Table I's min co-run rows) exceeds the standalone time
// and stays finite for every job and device.
func TestMinCoRunTimes(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 0)
	for i := range batch {
		for d := apu.CPU; d <= apu.GPU; d++ {
			co, ok := cx.MinCoRunTime(i, d)
			if !ok {
				t.Fatalf("job %d dev %v: no co-run time", i, d)
			}
			solo, _ := cx.BestSoloTime(i, d)
			if co < solo {
				t.Errorf("job %d dev %v: min co-run %v below solo %v", i, d, co, solo)
			}
			if float64(co) > 3*float64(solo) {
				t.Errorf("job %d dev %v: min co-run %v implausibly above solo %v", i, d, co, solo)
			}
		}
	}
}

// The ablations run and produce valid schedules; disabling parts of the
// algorithm must not beat the full heuristic on predicted makespan by
// any meaningful margin.
func TestHCSAblations(t *testing.T) {
	batch := workload.Batch16()
	cx, _ := testContext(t, batch, 15)
	full, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fullT, err := cx.PredictedMakespan(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []HCSOptions{
		{DisablePartition: true},
		{DisablePreference: true},
		{DisablePartition: true, DisablePreference: true},
	} {
		s, err := cx.HCS(opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if err := s.Validate(len(batch)); err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		tt, err := cx.PredictedMakespan(s)
		if err != nil {
			t.Fatal(err)
		}
		if float64(tt) < float64(fullT)*0.95 {
			t.Errorf("ablation %+v predicted %v clearly beats full HCS %v", opt, tt, fullT)
		}
	}
}

// Scheduling overhead: the paper reports the algorithm takes under
// 0.1% of the makespan. Simulated makespans are hundreds of seconds;
// HCS+HCS+ must run in well under a real-time fraction of that.
func TestSchedulerOverheadTiny(t *testing.T) {
	batch := workload.Batch16()
	cx, _ := testContext(t, batch, 15)
	start := time.Now()
	if _, _, err := cx.HCSPlus(HCSOptions{}, RefineOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("scheduling took %v; far too slow for online use", el)
	}
}

func TestExecuteValidatesIDs(t *testing.T) {
	batch := workload.Batch8()
	cx, opts := testContext(t, batch, 15)
	s, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batch[3].ID = 99
	if _, err := cx.Execute(s, batch, opts); err == nil {
		t.Error("mismatched instance IDs accepted")
	}
}

func TestDefaultPartitionShape(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 15)
	cpuJobs, gpuJobs := DefaultPartition(cx.Oracle, cx.Cfg)
	if len(cpuJobs)+len(gpuJobs) != 8 {
		t.Fatal("partition does not cover the batch")
	}
	// dwt2d (2) has the smallest CPU/GPU ratio: it must be in the CPU
	// partition (the ranking's tail).
	found := false
	for _, j := range cpuJobs {
		if j == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("dwt2d not in the CPU partition: cpu=%v gpu=%v", cpuJobs, gpuJobs)
	}
	// The GPU partition must hold the majority: six programs are
	// GPU-preferred, and the GPU is ~2.3x faster on them.
	if len(gpuJobs) < len(cpuJobs) {
		t.Errorf("GPU partition (%d) smaller than CPU partition (%d)", len(gpuJobs), len(cpuJobs))
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	batch := workload.Batch8()
	_, opts := testContext(t, batch, 15)
	a, err := ExecuteRandom(opts, batch, 42, sim.GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecuteRandom(opts, batch, 42, sim.GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("same seed gave different makespans: %v vs %v", a.Makespan, b.Makespan)
	}
	c, err := ExecuteRandom(opts, batch, 43, sim.GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan == c.Makespan {
		t.Log("different seeds coincided (possible but unusual)")
	}
}

func TestRandomAverageValidation(t *testing.T) {
	batch := workload.Batch8()
	_, opts := testContext(t, batch, 15)
	if _, _, err := RandomAverage(opts, batch, 0, 0, sim.GPUBiased); err == nil {
		t.Error("zero seeds accepted")
	}
	avg, results, err := RandomAverage(opts, batch, 3, 0, sim.GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || avg <= 0 {
		t.Errorf("RandomAverage returned %d results, avg %v", len(results), avg)
	}
}

// All 16 jobs complete under every policy (no job lost by a dispatcher).
func TestAllPoliciesCompleteAllJobs(t *testing.T) {
	batch := workload.Batch16()
	cx, opts := testContext(t, batch, 15)

	check := func(name string, res *sim.Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Completions) != len(batch) {
			t.Errorf("%s: %d of %d jobs completed", name, len(res.Completions), len(batch))
		}
	}
	r, err := ExecuteRandom(opts, batch, 5, sim.GPUBiased)
	check("random", r, err)
	d, err := ExecuteDefault(opts, batch, cx.Oracle, sim.CPUBiased)
	check("default", d, err)
	s, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := cx.Execute(s, batch, opts)
	check("hcs", h, err)
}

func TestExplainPlan(t *testing.T) {
	batch := workload.Batch8()
	cx, _ := testContext(t, batch, 15)
	s, err := cx.HCS(HCSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]string, len(batch))
	for i, in := range batch {
		labels[i] = in.Label
	}
	var b strings.Builder
	if err := cx.ExplainPlan(&b, s, labels); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"power cap: 15.0 W", "dwt2d", "pref=", "queues:", "t=", "predicted degradation"} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
	// Bad schedules are rejected.
	if err := cx.ExplainPlan(&b, &Schedule{CPUOrder: []int{0, 0}, Exclusive: map[int]bool{}}, labels); err == nil {
		t.Error("invalid schedule accepted")
	}
}
