package core

import (
	"math"
	"testing"
	"testing/quick"

	"corun/internal/units"
)

func TestCoRunTheoremBasic(t *testing.T) {
	// l1=10 with d1=0.2 (co-run 12) vs l2=5 with d2=0.1 (co-run 5.5):
	// overhead l1*d1 = 2 < l2 = 5, so co-running wins.
	if !CoRunBeneficial(10, 5, 0.2, 0.1) {
		t.Error("beneficial co-run rejected")
	}
	// Heavy mutual degradation: l1=10, d1=0.9 -> overhead 9 > l2 = 5.
	if CoRunBeneficial(10, 5, 0.9, 0.1) {
		t.Error("harmful co-run accepted")
	}
	// Zero degradation always wins (free overlap).
	if !CoRunBeneficial(10, 10, 0, 0) {
		t.Error("free co-run rejected")
	}
}

// The theorem is order-independent: swapping the jobs' labels must not
// change the verdict.
func TestCoRunTheoremSymmetric(t *testing.T) {
	f := func(l1Raw, l2Raw, d1Raw, d2Raw uint16) bool {
		l1 := units.Seconds(float64(l1Raw)/65535*100 + 1)
		l2 := units.Seconds(float64(l2Raw)/65535*100 + 1)
		d1 := float64(d1Raw) / 65535
		d2 := float64(d2Raw) / 65535
		return CoRunBeneficial(l1, l2, d1, d2) == CoRunBeneficial(l2, l1, d2, d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The theorem agrees exactly with the naive pair makespan: co-run
// beneficial iff NaivePairMakespan < l1 + l2. (This is the theorem's
// proof restated as a property.)
func TestCoRunTheoremMatchesNaiveMakespan(t *testing.T) {
	f := func(l1Raw, l2Raw, d1Raw, d2Raw uint16) bool {
		l1 := units.Seconds(float64(l1Raw)/65535*100 + 1)
		l2 := units.Seconds(float64(l2Raw)/65535*100 + 1)
		d1 := float64(d1Raw) / 65535
		d2 := float64(d2Raw) / 65535
		ms := NaivePairMakespan(l1, l2, d1, d2)
		seq := l1 + l2
		// Avoid knife-edge ties.
		if math.Abs(float64(ms-seq)) < 1e-9 {
			return true
		}
		return CoRunBeneficial(l1, l2, d1, d2) == (ms < seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The side-note-aware makespan is never worse than the naive one: the
// partial-overlap correction only removes phantom interference.
func TestSideNoteNeverWorseThanNaive(t *testing.T) {
	f := func(l1Raw, l2Raw, d1Raw, d2Raw uint16) bool {
		l1 := units.Seconds(float64(l1Raw)/65535*100 + 1)
		l2 := units.Seconds(float64(l2Raw)/65535*100 + 1)
		d1 := float64(d1Raw) / 65535
		d2 := float64(d2Raw) / 65535
		return PairMakespan(l1, l2, d1, d2) <= NaivePairMakespan(l1, l2, d1, d2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPairTimesEqualLengths(t *testing.T) {
	t1, t2 := PairTimes(10, 10, 0.5, 0.5)
	if t1 != 15 || t2 != 15 {
		t.Errorf("equal co-runs: (%v,%v), want (15,15)", t1, t2)
	}
}

// The side-note case: the shorter co-run finishes, the longer one's
// remainder runs undegraded.
func TestPairTimesSideNote(t *testing.T) {
	// l1=10,d1=0.5 -> would be 15 naively; l2=6,d2=0.2 -> 7.2 finishes
	// first. By 7.2, job1 completed 7.2/1.5=4.8 standalone-seconds;
	// remaining 5.2 run alone: finish 12.4 < naive 15.
	t1, t2 := PairTimes(10, 6, 0.5, 0.2)
	if math.Abs(float64(t2)-7.2) > 1e-9 {
		t.Errorf("short job finish = %v, want 7.2", t2)
	}
	if math.Abs(float64(t1)-12.4) > 1e-9 {
		t.Errorf("long job finish = %v, want 12.4", t1)
	}
}

// Properties of PairTimes: each finish time is at least the standalone
// length and at most the naive fully-degraded length; the joint
// makespan never exceeds sequential execution when degradations are
// zero.
func TestPairTimesProperty(t *testing.T) {
	f := func(l1Raw, l2Raw, d1Raw, d2Raw uint16) bool {
		l1 := units.Seconds(float64(l1Raw)/65535*100 + 1)
		l2 := units.Seconds(float64(l2Raw)/65535*100 + 1)
		d1 := float64(d1Raw) / 65535 * 2
		d2 := float64(d2Raw) / 65535 * 2
		t1, t2 := PairTimes(l1, l2, d1, d2)
		if t1 < l1-1e-9 || t2 < l2-1e-9 {
			return false
		}
		if float64(t1) > float64(l1)*(1+d1)+1e-9 || float64(t2) > float64(l2)*(1+d2)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPairMakespanZeroDegradation(t *testing.T) {
	if got := PairMakespan(10, 25, 0, 0); got != 25 {
		t.Errorf("free co-run makespan = %v, want 25", got)
	}
}
