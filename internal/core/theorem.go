package core

import (
	"corun/internal/apu"
	"corun/internal/units"
)

// CoRunBeneficial is the Co-Run Theorem of section IV-A: given two
// jobs with standalone lengths l1, l2 and co-run degradations d1, d2
// (fractions), the co-run yields higher throughput than running the
// two jobs back to back if and only if the longer co-run's overhead is
// smaller than the shorter job's standalone length.
//
// With l1*(1+d1) >= l2*(1+d2), the theorem reads: co-run wins iff
// l1*d1 < l2.
func CoRunBeneficial(l1, l2 units.Seconds, d1, d2 float64) bool {
	// Normalize so that job 1 has the longer co-run length.
	if float64(l1)*(1+d1) < float64(l2)*(1+d2) {
		l1, l2 = l2, l1
		d1, d2 = d2, d1
	}
	return float64(l1)*d1 < float64(l2)
}

// PairTimes computes the finish times of two jobs that start together
// on the two processors, honouring the side note of section IV-B: only
// the overlapped part of the longer job suffers interference; its
// remainder runs undegraded.
//
// l1, l2 are standalone lengths at the chosen frequencies and d1, d2
// the mutual degradations. The returned times are each job's
// completion time; the pair's makespan is their maximum.
func PairTimes(l1, l2 units.Seconds, d1, d2 float64) (t1, t2 units.Seconds) {
	c1 := float64(l1) * (1 + d1)
	c2 := float64(l2) * (1 + d2)
	if c1 == c2 {
		return units.Seconds(c1), units.Seconds(c2)
	}
	if c1 < c2 {
		// Job 1 finishes first at c1. Job 2 progressed c1/(1+d2) worth
		// of standalone execution by then; the rest runs alone.
		rest := float64(l2) - c1/(1+d2)
		return units.Seconds(c1), units.Seconds(c1 + rest)
	}
	rest := float64(l1) - c2/(1+d1)
	return units.Seconds(c2 + rest), units.Seconds(c2)
}

// PairMakespan is the makespan of the co-run described by PairTimes.
func PairMakespan(l1, l2 units.Seconds, d1, d2 float64) units.Seconds {
	t1, t2 := PairTimes(l1, l2, d1, d2)
	if t1 > t2 {
		return t1
	}
	return t2
}

// NaivePairMakespan is the co-run makespan under the theorem's
// assumption that both jobs suffer their degradation over their whole
// runs: max of the two naive co-run lengths. The Co-Run Theorem is
// exactly the comparison of this quantity against sequential execution.
func NaivePairMakespan(l1, l2 units.Seconds, d1, d2 float64) units.Seconds {
	c1 := float64(l1) * (1 + d1)
	c2 := float64(l2) * (1 + d2)
	if c1 > c2 {
		return units.Seconds(c1)
	}
	return units.Seconds(c2)
}

// coRunEverBeneficial reports whether job i can benefit from co-running
// with any other job under the cap: the step-1 partition test. It
// tries both placements of every partner and every cap-feasible
// frequency pair, comparing the co-run makespan against the best
// sequential execution of the two jobs (each alone on its best
// cap-feasible device and level).
func (cx *Context) coRunEverBeneficial(i int) bool {
	n := cx.Oracle.NumJobs()
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		if cx.pairEverBeneficial(i, j) || cx.pairEverBeneficial(j, i) {
			return true
		}
	}
	return false
}

// pairEverBeneficial checks placement (c on CPU, g on GPU) for any
// feasible frequency pair whose co-run beats sequential execution.
func (cx *Context) pairEverBeneficial(c, g int) bool {
	o := cx.Oracle
	_, _, seqC, okC := cx.BestSoloAnywhere(c)
	_, _, seqG, okG := cx.BestSoloAnywhere(g)
	if !okC || !okG {
		return false
	}
	seq := seqC + seqG
	for _, fc := range cx.freqLevels(apu.CPU) {
		for _, fg := range cx.freqLevels(apu.GPU) {
			if cx.Capped() && o.CoRunPower(c, fc, g, fg) > cx.Cap {
				continue
			}
			dc := o.Degradation(c, apu.CPU, fc, g, fg)
			dg := o.Degradation(g, apu.GPU, fg, c, fc)
			// The partition test applies the theorem's conservative
			// (naive-length) comparison, as step 1 prescribes.
			ms := NaivePairMakespan(o.StandaloneTime(c, apu.CPU, fc), o.StandaloneTime(g, apu.GPU, fg), dc, dg)
			if ms < seq {
				return true
			}
		}
	}
	return false
}
