package corun

import (
	"bytes"
	"testing"
)

// Error paths and accessors of the public facade.

func TestScheduleErrorsOnInfeasibleCapAtPlanTime(t *testing.T) {
	// A cap just above the minimum co-run power makes solo CPU runs
	// borderline; build a legit system but hand Run a foreign schedule.
	s := capped15(t)
	w8, err := s.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	w16, err := s.Prepare(Batch16())
	if err != nil {
		t.Fatal(err)
	}
	plan16, err := w16.ScheduleHCS()
	if err != nil {
		t.Fatal(err)
	}
	// A 16-job schedule cannot run against an 8-job workload.
	if _, err := w8.Run(plan16); err == nil {
		t.Error("mismatched schedule accepted by Run")
	}
	if _, err := w8.PredictedMakespan(plan16); err == nil {
		t.Error("mismatched schedule accepted by PredictedMakespan")
	}
}

func TestPairDegradationIndexValidation(t *testing.T) {
	s := capped15(t)
	w, err := s.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.PredictPairDegradation(-1, 0); err == nil {
		t.Error("negative index accepted")
	}
	if _, _, err := w.PredictPairDegradation(0, 99); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, _, err := w.MeasurePairDegradation(99, 0); err == nil {
		t.Error("out-of-range index accepted by measure")
	}
	// And a valid pair round-trips: prediction and measurement agree in
	// sign and rough magnitude for a well-modelled pair.
	p, _, err := w.PredictPairDegradation(5, 0) // lud beside streamcluster
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := w.MeasurePairDegradation(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || m <= 0 {
		t.Errorf("degradations should be positive: predicted %v measured %v", p, m)
	}
}

func TestStandaloneTimeIndexValidation(t *testing.T) {
	s := capped15(t)
	w, err := s.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.StandaloneTime(99, CPU); err == nil {
		t.Error("out-of-range job accepted")
	}
}

func TestBatchAccessor(t *testing.T) {
	s := capped15(t)
	batch := Batch8()
	w, err := s.Prepare(batch)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Batch(); len(got) != 8 || got[0] != batch[0] {
		t.Error("Batch accessor broken")
	}
}

func TestServeClusterValidation(t *testing.T) {
	s := capped15(t)
	if _, err := s.ServeCluster(nil, 0, RoundRobin, ServeHCSPlus, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	a, err := ArrivalOf("lud", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ServeCluster([]Arrival{a}, 2, LeastLoaded, ServeHCSPlus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerNode) != 2 {
		t.Errorf("%d nodes in result", len(res.PerNode))
	}
}

func TestArrivalOfValidation(t *testing.T) {
	if _, err := ArrivalOf("nope", 0, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	a, err := ArrivalOf("srad", 12.5, 1.1)
	if err != nil || a.At != 12.5 || a.Scale != 1.1 || a.Prog == nil {
		t.Errorf("ArrivalOf broken: %+v %v", a, err)
	}
}

func TestGenerateArrivalsFacade(t *testing.T) {
	as, err := GenerateArrivals(5, 10, 2)
	if err != nil || len(as) != 5 {
		t.Fatalf("GenerateArrivals: %v %d", err, len(as))
	}
	if _, err := GenerateArrivals(0, 10, 2); err == nil {
		t.Error("zero arrivals accepted")
	}
}

func TestSaveCharacterizationRejectsNilWriterTarget(t *testing.T) {
	s := capped15(t)
	var buf bytes.Buffer
	if err := s.SaveCharacterization(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("nothing written")
	}
}

func TestMachinePresets(t *testing.T) {
	if DefaultMachine() == nil || KaveriMachine() == nil {
		t.Fatal("nil presets")
	}
	if DefaultMachine().TDP == KaveriMachine().TDP {
		t.Error("presets suspiciously identical")
	}
}

// Online calibration plugs into the pipeline and does not hurt the
// scheduled outcome.
func TestPrepareCalibrated(t *testing.T) {
	s := capped15(t)
	batch := Batch8()
	plain, err := s.Prepare(batch)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := s.PrepareCalibrated(batch)
	if err != nil {
		t.Fatal(err)
	}
	planPlain, err := plain.ScheduleHCSPlus()
	if err != nil {
		t.Fatal(err)
	}
	planCal, err := cal.ScheduleHCSPlus()
	if err != nil {
		t.Fatal(err)
	}
	repPlain, err := plain.Run(planPlain)
	if err != nil {
		t.Fatal(err)
	}
	repCal, err := cal.Run(planCal)
	if err != nil {
		t.Fatal(err)
	}
	if float64(repCal.Makespan) > float64(repPlain.Makespan)*1.10 {
		t.Errorf("calibrated model scheduled clearly worse: %v vs %v",
			repCal.Makespan, repPlain.Makespan)
	}
}
