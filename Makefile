GO ?= go
GOFMT ?= gofmt
BENCHTIME ?= 1s
FUZZTIME ?= 5s
LOADTEST_DURATION ?= 5s
LOADTEST_WARMUP ?= 2s
BENCHDIFF_BASE ?= origin/main
BENCHDIFF_COUNT ?= 5
BENCHDIFF_THRESHOLD ?= 0.15

.PHONY: all build test race vet fmtcheck bench benchdiff race-smoke fuzz loadtest loadtest-fleet verify corund clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmtcheck fails (listing the offenders) if any file needs gofmt.
fmtcheck:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench runs the planning benchmarks of the policy engine and the
# append/recovery benchmarks of the state journal (no tests, with
# allocation stats). BENCHTIME=1x gives a quick smoke run.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) \
		./internal/policy/ ./internal/journal/

# benchdiff is the bench-regression gate: it checks out the merge base
# of BENCHDIFF_BASE into a throwaway git worktree, runs the tier-1
# serving-path microbenches there and at HEAD (BENCHDIFF_COUNT
# repetitions each, medians compared), and fails on a
# >BENCHDIFF_THRESHOLD regression in ns/op or B/op via the in-repo
# cmd/benchdiff (a dependency-free benchstat stand-in).
benchdiff:
	@set -e; \
	base="$$(git merge-base HEAD $(BENCHDIFF_BASE) 2>/dev/null || git rev-parse HEAD~1)"; \
	tmp="$$(mktemp -d)"; \
	trap 'git worktree remove --force "$$tmp/base" >/dev/null 2>&1 || true; rm -rf "$$tmp"' EXIT; \
	echo "benchdiff: baseline $$base"; \
	git worktree add --detach "$$tmp/base" "$$base" >/dev/null; \
	( cd "$$tmp/base" && $(GO) test -run='^$$' -bench='BenchmarkSubmitHandler|BenchmarkJobsHandler|BenchmarkJobHandler' \
		-benchmem -count=$(BENCHDIFF_COUNT) ./internal/server/ ) > "$$tmp/old.txt"; \
	$(GO) test -run='^$$' -bench='BenchmarkSubmitHandler|BenchmarkJobsHandler|BenchmarkJobHandler' \
		-benchmem -count=$(BENCHDIFF_COUNT) ./internal/server/ > "$$tmp/new.txt"; \
	$(GO) run ./cmd/benchdiff -old "$$tmp/old.txt" -new "$$tmp/new.txt" \
		-threshold $(BENCHDIFF_THRESHOLD) -metrics "ns/op,B/op"

# race-smoke drives a short corunbench closed loop against a race-
# instrumented in-process daemon — the serving path's concurrency
# smoke test for CI.
race-smoke:
	$(GO) run -race ./cmd/corunbench -mode closed -concurrency 8 \
		-duration 2s -warmup 500ms \
		-tenants 'team-a=3:high,team-b=2,batch=1:low' \
		-tenant-weights 'team-a=3,team-b=1,batch=0' -max-batch 8 \
		-out /dev/null

# fuzz smoke-runs every fuzz target for FUZZTIME each (go test takes
# one -fuzz pattern per invocation, hence one line per target).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRecord -fuzztime=$(FUZZTIME) ./internal/journal/
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/policy/
	$(GO) test -run='^$$' -fuzz=FuzzPairTimes -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzArbitrate -fuzztime=$(FUZZTIME) ./internal/memsys/
	$(GO) test -run='^$$' -fuzz=FuzzJobSpecJSON -fuzztime=$(FUZZTIME) ./internal/workload/
	$(GO) test -run='^$$' -fuzz=FuzzAdmissionSpec -fuzztime=$(FUZZTIME) ./internal/admission/

# loadtest drives a self-hosted corund end-to-end with cmd/corunbench
# (closed loop, journaling to a temp dir, a three-tenant mix against
# WFQ weights and a bounded batch) and writes the canonical
# BENCH_10.json report: throughput, per-endpoint and per-tenant latency
# quantiles, server-side counter deltas (including the per-plane watts,
# temperature, and binding_constraint of the domain model), paired
# journal micro-benchmarks, and the committed optimization evidence
# from bench/optimizations_9.json. Concurrency 32 (up from 4) exercises
# the sharded table and lets the journal writer goroutine coalesce
# submitters into shared fsyncs — at concurrency 4 there is almost
# nothing to batch.
#
# -tmax 45 makes the run a thermal-throttle scenario: at the 15 W cap
# the heatsink steadies near 52-54 C, so a 45 C trip point reliably
# fires mid-epoch and the report's binding_constraint reads "thermal"
# (the power cap alone would read "package"). That keeps the thermal
# path exercised end-to-end on every CI run, not just in unit tests.
#
# The shape below measures the *serving path*, so everything else is
# kept off the critical core (the CI host has one):
#   -policy random   planning cost ~65us/job instead of hcs+'s
#                    ~300us-1.8ms/job; on a 1-CPU host hcs+ planning
#                    monopolizes the core and the bench measures the
#                    planner, not the serving path. Planning runs off
#                    the request path either way (see DESIGN 2h).
#   -max-batch 64    drain headroom: epochs/s x batch must exceed the
#                    accept rate or the queue bound backpressures.
#   -max-queue 16384 absorbs the burstier accepted stream.
#   GOGC=800         the closed loop is allocation-bound at this rate;
#                    default GOGC spends ~25% of the core in GC.
loadtest:
	GOGC=800 $(GO) run ./cmd/corunbench -mode closed -concurrency 32 \
		-duration $(LOADTEST_DURATION) -warmup $(LOADTEST_WARMUP) \
		-policy random -max-batch 64 -max-queue 16384 -tmax 45 \
		-tenants 'team-a=3:high,team-b=2,batch=1:low' \
		-tenant-weights 'team-a=3,team-b=1,batch=0' \
		-microbench -notes bench/optimizations_9.json -out BENCH_10.json

# loadtest-fleet drives a self-hosted 3-node fleet behind the
# in-process coordinator with the same mixed-tenant workload, three
# times the single-node concurrency (so each node sees the loadtest
# share), plus a paired single-node baseline at the per-node share, and
# writes BENCH_8.json: fleet throughput, per-node routed/placement
# counts and power shares, the worst one-sided fraction, and the
# speedup against the embedded baseline.
# The mix weights dwt2d (the one CPU-preferred program at max
# frequency) up to half the stream, so the workload genuinely mixes
# CPU- and GPU-preferred jobs and the per-node one-sided fractions
# measure the placer rather than the calibration table's GPU skew.
loadtest-fleet:
	$(GO) run ./cmd/corunbench -fleet 3 -baseline \
		-mode closed -concurrency 12 \
		-duration $(LOADTEST_DURATION) -warmup $(LOADTEST_WARMUP) \
		-mix 'dwt2d=7,streamcluster=1,cfd=1,hotspot=1,srad=1,lud=1,leukocyte=1,heartwall=1' \
		-tenants 'team-a=3:high,team-b=2,batch=1:low' \
		-tenant-weights 'team-a=3,team-b=1,batch=0' -max-batch 8 \
		-out BENCH_8.json

# verify is the tier-1 gate: everything must be gofmt-clean, compile,
# vet clean, and pass the full test suite under the race detector.
verify: fmtcheck
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

corund:
	$(GO) build -o bin/corund ./cmd/corund

clean:
	rm -rf bin
