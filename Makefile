GO ?= go

.PHONY: all build test race vet verify corund clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the tier-1 gate: everything must compile, vet clean, and
# pass the full test suite under the race detector.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

corund:
	$(GO) build -o bin/corund ./cmd/corund

clean:
	rm -rf bin
