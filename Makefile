GO ?= go
GOFMT ?= gofmt

.PHONY: all build test race vet fmtcheck bench verify corund clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmtcheck fails (listing the offenders) if any file needs gofmt.
fmtcheck:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench runs the cached-vs-uncached planning benchmarks of the policy
# engine (no tests, with allocation stats).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/policy/

# verify is the tier-1 gate: everything must be gofmt-clean, compile,
# vet clean, and pass the full test suite under the race detector.
verify: fmtcheck
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

corund:
	$(GO) build -o bin/corund ./cmd/corund

clean:
	rm -rf bin
