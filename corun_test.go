package corun

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	sysOnce sync.Once
	sysVal  *System
	sysErr  error
)

// capped15 caches a 15 W system across tests (characterization is the
// expensive part).
func capped15(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() { sysVal, sysErr = NewSystem(WithPowerCap(15)) })
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal
}

func TestNewSystemDefaults(t *testing.T) {
	s, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if s.PowerCap() != 0 {
		t.Errorf("default cap = %v, want uncapped", s.PowerCap())
	}
	if s.Machine() == nil {
		t.Fatal("nil machine")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(WithPowerCap(1)); err == nil {
		t.Error("infeasible cap accepted")
	}
	if _, err := NewSystem(WithCharacterizationLevels(1)); err == nil {
		t.Error("single characterization level accepted")
	}
	bad := *capped15(t).Machine()
	bad.CPUCores = 0
	if _, err := NewSystem(WithMachine(&bad)); err == nil {
		t.Error("broken machine accepted")
	}
}

func TestPrepareValidation(t *testing.T) {
	s := capped15(t)
	if _, err := s.Prepare(nil); err == nil {
		t.Error("empty batch accepted")
	}
	batch := Batch8()
	batch[2].ID = 7
	if _, err := s.Prepare(batch); err == nil {
		t.Error("misnumbered batch accepted")
	}
	if _, err := s.Prepare([]*Instance{nil}); err == nil {
		t.Error("nil instance accepted")
	}
}

func TestEndToEndQuickstart(t *testing.T) {
	s := capped15(t)
	w, err := s.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.ScheduleHCSPlus()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 || len(rep.Completions) != 8 {
		t.Fatalf("bad report: makespan %v, %d completions", rep.Makespan, len(rep.Completions))
	}
	if rep.AvgPower <= 0 || rep.Power.Len() == 0 {
		t.Error("power accounting missing")
	}
	// The planned schedule respects the cap up to reactive noise.
	if float64(rep.MaxExcess) > 2 {
		t.Errorf("cap exceeded by %v", rep.MaxExcess)
	}

	// Baselines are worse.
	rnd, err := w.RunRandom(1, GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Makespan <= rep.Makespan {
		t.Errorf("random (%v) should lose to HCS+ (%v)", rnd.Makespan, rep.Makespan)
	}
	def, err := w.RunDefault(GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	if def.Makespan <= rep.Makespan {
		t.Errorf("default (%v) should lose to HCS+ (%v)", def.Makespan, rep.Makespan)
	}

	// The lower bound sits below everything.
	bound, err := w.LowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if bound > rep.Makespan {
		t.Errorf("bound %v above HCS+ %v", bound, rep.Makespan)
	}

	// Predicted and executed makespans are of the same magnitude.
	pm, err := w.PredictedMakespan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(rep.Makespan) / float64(pm); ratio < 0.6 || ratio > 1.7 {
		t.Errorf("predicted %v vs executed %v diverge wildly", pm, rep.Makespan)
	}
}

func TestStandaloneTimeAccessor(t *testing.T) {
	s := capped15(t)
	w, err := s.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	tc, err := w.StandaloneTime(2, CPU) // dwt2d
	if err != nil {
		t.Fatal(err)
	}
	tg, err := w.StandaloneTime(2, GPU)
	if err != nil {
		t.Fatal(err)
	}
	if tc >= tg {
		t.Errorf("dwt2d CPU %v should beat GPU %v", tc, tg)
	}
}

func TestSubsetAndNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 8 {
		t.Fatalf("got %d names", len(names))
	}
	b, err := Subset("lud", "srad")
	if err != nil || len(b) != 2 {
		t.Fatalf("Subset failed: %v", err)
	}
	if _, err := Subset("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCustomCharacterizationLevels(t *testing.T) {
	s, err := NewSystem(WithCharacterizationLevels(5))
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.ScheduleHCS()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(plan); err != nil {
		t.Fatal(err)
	}
}

// The pipeline's conclusion — co-scheduling beats the baselines under
// a cap — holds on a different machine (the AMD-like preset), echoing
// the paper's "both Intel and AMD" observation.
func TestKaveriMachineEndToEnd(t *testing.T) {
	sys, err := NewSystem(WithMachine(KaveriMachine()), WithPowerCap(45))
	if err != nil {
		t.Fatal(err)
	}
	w, err := sys.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.ScheduleHCSPlus()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completions) != 8 {
		t.Fatalf("%d completions", len(rep.Completions))
	}
	rnd, err := w.RunRandom(1, GPUBiased)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Makespan <= rep.Makespan {
		t.Errorf("on Kaveri: random %v should lose to HCS+ %v", rnd.Makespan, rep.Makespan)
	}
}

// A characterization saved from one system drives another without
// re-measuring, yielding identical schedules.
func TestCharacterizationPersistenceRoundTrip(t *testing.T) {
	orig := capped15(t)
	var buf bytes.Buffer
	if err := orig.SaveCharacterization(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewSystem(WithPowerCap(15), WithCharacterizationFrom(&buf))
	if err != nil {
		t.Fatal(err)
	}
	wA, err := orig.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	wB, err := loaded.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	pa, err := wA.ScheduleHCS()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := wB.ScheduleHCS()
	if err != nil {
		t.Fatal(err)
	}
	if pa.String() != pb.String() {
		t.Errorf("loaded characterization planned differently:\n%v\n%v", pa, pb)
	}
	// Corrupt input fails loudly.
	if _, err := NewSystem(WithCharacterizationFrom(bytes.NewBufferString("junk"))); err == nil {
		t.Error("junk characterization accepted")
	}
}

// Reports render as Gantt charts.
func TestReportWriteGantt(t *testing.T) {
	s := capped15(t)
	w, err := s.Prepare(Batch8())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.ScheduleHCS()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.WriteGantt(&b, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CPU") || !strings.Contains(b.String(), "GPU") {
		t.Errorf("Gantt chart malformed:\n%s", b.String())
	}
}

func TestBatch16RoundTrip(t *testing.T) {
	s := capped15(t)
	w, err := s.Prepare(Batch16())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.ScheduleHCSPlus()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completions) != 16 {
		t.Errorf("%d completions, want 16", len(rep.Completions))
	}
}

// Custom programs defined through the public API schedule end to end.
func TestCustomProgramSpec(t *testing.T) {
	mk := func(name string, id int, gpuEff float64, bpo float64) *Instance {
		in, err := NewInstance(ProgramSpec{
			Name: name, Work: 80,
			CPUEff: 0.6, GPUEff: gpuEff,
			CPUSens: 0.25, GPUSens: 0.1,
			Phases: []PhaseSpec{{Frac: 0.7, BytesPerOp: bpo}, {Frac: 0.3, BytesPerOp: 0.2}},
		}, id, 1)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	batch := []*Instance{
		mk("render", 0, 3.0, 1.8),
		mk("encode", 1, 2.2, 0.6),
		mk("analyze", 2, 0.9, 1.2), // CPU-leaning
	}
	s := capped15(t)
	w, err := s.Prepare(batch)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.ScheduleHCSPlus()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Completions) != 3 {
		t.Fatalf("%d completions", len(rep.Completions))
	}
	if rep.MaxExcess > 2 {
		t.Errorf("custom batch blew the cap by %v", rep.MaxExcess)
	}
}

func TestNewInstanceValidation(t *testing.T) {
	good := ProgramSpec{Name: "x", Work: 10, CPUEff: 1, GPUEff: 1,
		Phases: []PhaseSpec{{Frac: 1, BytesPerOp: 0.5}}}
	if _, err := NewInstance(good, 0, 0); err == nil {
		t.Error("zero scale accepted")
	}
	bad := good
	bad.Phases = []PhaseSpec{{Frac: 0.5, BytesPerOp: 0.5}}
	if _, err := NewInstance(bad, 0, 1); err == nil {
		t.Error("fractions not summing to 1 accepted")
	}
	bad = good
	bad.Work = 0
	if _, err := NewInstance(bad, 0, 1); err == nil {
		t.Error("zero work accepted")
	}
}
